// In-process primary/follower topology tests: two real repositories, two
// real HTTP servers, a real pull loop. The only test double is a proxy
// that corrupts stream bodies — everything else is the production path.
package replication_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"verlog/internal/objectbase"
	"verlog/internal/parser"
	"verlog/internal/replication"
	"verlog/internal/repository"
	"verlog/internal/server"
	"verlog/internal/storage"
	"verlog/internal/term"
)

const initSrc = `
phil.isa -> empl / pos -> mgr / sal -> 4000.
bob.isa -> empl / boss -> phil / sal -> 4200.
`

func testBase(t *testing.T) *objectbase.Base {
	t.Helper()
	b, err := parser.ObjectBase(initSrc, "init.vlg")
	if err != nil {
		t.Fatalf("parse init: %v", err)
	}
	return b
}

// raiseProgram returns a distinct one-rule raise so successive applies
// produce distinct states.
func raiseProgram(t *testing.T, delta int) *term.Program {
	t.Helper()
	src := fmt.Sprintf(
		`raise: mod[E].sal -> (S, S') <- E.isa -> empl, E.sal -> S, S' = S + %d.`, delta)
	p, err := parser.Program(src, "raise.vlg")
	if err != nil {
		t.Fatalf("parse raise: %v", err)
	}
	return p
}

// node bundles one replication participant for tests.
type testNode struct {
	repo *repository.Repository
	node *replication.Node
	srv  *httptest.Server
}

func startPrimary(t *testing.T, cfg replication.Config) *testNode {
	t.Helper()
	repo, err := repository.Init(t.TempDir()+"/primary", testBase(t))
	if err != nil {
		t.Fatalf("Init primary: %v", err)
	}
	if cfg.FollowerTTL == 0 {
		cfg.FollowerTTL = time.Hour // tests control liveness explicitly
	}
	n := replication.NewNode(repo, cfg)
	srv := httptest.NewServer(server.New(repo, server.WithReplication(n)))
	t.Cleanup(srv.Close)
	return &testNode{repo: repo, node: n, srv: srv}
}

// startFollower starts a follower of primaryURL with a fast poll so tests
// converge quickly.
func startFollower(t *testing.T, primaryURL string) *testNode {
	t.Helper()
	repo, err := repository.Init(t.TempDir()+"/follower", testBase(t))
	if err != nil {
		t.Fatalf("Init follower: %v", err)
	}
	n := replication.NewNode(repo, replication.Config{
		PrimaryURL: primaryURL,
		FollowerID: "follower-under-test",
		PollWait:   100 * time.Millisecond,
	})
	srv := httptest.NewServer(server.New(repo, server.WithReplication(n)))
	n.Start()
	t.Cleanup(func() { n.Stop(); srv.Close() })
	return &testNode{repo: repo, node: n, srv: srv}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitConverged waits until follower's published head reaches seq and
// asserts base equality with primary at that point.
func waitConverged(t *testing.T, primary, follower *repository.Repository, seq int) {
	t.Helper()
	waitFor(t, fmt.Sprintf("follower head seq %d", seq), func() bool {
		_, s := follower.Snapshot()
		return s >= seq
	})
	pb, ps := primary.Snapshot()
	fb, fs := follower.Snapshot()
	if ps != fs {
		t.Fatalf("head seqs diverged: primary %d, follower %d", ps, fs)
	}
	if !pb.Equal(fb) {
		t.Fatalf("bases diverged at seq %d", ps)
	}
}

// metricValue scrapes a counter/gauge value from a /metrics exposition.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in %s/metrics", name, url)
	return 0
}

func getStatus(t *testing.T, url string) replication.Status {
	t.Helper()
	resp, err := http.Get(url + "/v1/repl/status")
	if err != nil {
		t.Fatalf("GET /v1/repl/status: %v", err)
	}
	defer resp.Body.Close()
	var st replication.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// TestFollowerConverges: a follower streams a primary's applies, serves
// identical reads, and both sides report the link in /v1/repl/status.
func TestFollowerConverges(t *testing.T) {
	p := startPrimary(t, replication.Config{})
	f := startFollower(t, p.srv.URL)

	for i := 1; i <= 4; i++ {
		if _, err := p.repo.Apply(raiseProgram(t, 10*i)); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
	}
	waitConverged(t, p.repo, f.repo, 4)

	// The follower serves reads over HTTP from its replicated head.
	resp, err := http.Post(f.srv.URL+"/v1/query", "text/plain",
		strings.NewReader(`phil.sal -> S.`))
	if err != nil {
		t.Fatalf("query follower: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower query returned %d: %s", resp.StatusCode, body)
	}
	if want := "4100"; !strings.Contains(string(body), want) { // 4000 +10+20+30+40
		t.Errorf("follower query = %s, want it to contain %q", body, want)
	}

	// Status: follower reports the link, primary reports the ack.
	waitFor(t, "follower connected with zero lag", func() bool {
		st := getStatus(t, f.srv.URL)
		return st.Role == "follower" && st.Connected && st.LagSeq == 0 && st.HeadSeq == 4
	})
	waitFor(t, "primary follower table ack", func() bool {
		st := getStatus(t, p.srv.URL)
		return st.Role == "primary" && len(st.Followers) == 1 &&
			st.Followers[0].ID == "follower-under-test" && st.Followers[0].AckSeq == 4
	})
	if lag := metricValue(t, f.srv.URL, "verlog_repl_lag_seq"); lag != 0 {
		t.Errorf("verlog_repl_lag_seq = %v, want 0", lag)
	}
	// The seq gauges agree on both sides of the link.
	for _, n := range []*testNode{p, f} {
		if h, j := metricValue(t, n.srv.URL, "verlog_head_seq"), metricValue(t, n.srv.URL, "verlog_journal_seq"); h != 4 || j != 4 {
			t.Errorf("seq gauges = head %v, journal %v, want 4, 4", h, j)
		}
	}
}

// TestFollowerRejectsWrites: mutations on a follower come back 403 with
// the read_only code and the primary's URL; reads keep working even with
// the primary gone, and the status reports the growing staleness.
func TestFollowerRejectsWrites(t *testing.T) {
	p := startPrimary(t, replication.Config{})
	f := startFollower(t, p.srv.URL)

	if _, err := p.repo.Apply(raiseProgram(t, 100)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	waitConverged(t, p.repo, f.repo, 1)

	resp, err := http.Post(f.srv.URL+"/v1/apply", "application/json",
		strings.NewReader(`{"program":"raise: mod[E].sal -> (S, S') <- E.isa -> empl, E.sal -> S, S' = S + 1."}`))
	if err != nil {
		t.Fatalf("apply on follower: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("apply on follower returned %d, want 403: %s", resp.StatusCode, body)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Primary string `json:"primary"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decode error envelope %s: %v", body, err)
	}
	if env.Error.Code != "read_only" || env.Error.Primary != p.srv.URL {
		t.Errorf("error = %+v, want code read_only and primary %s", env.Error, p.srv.URL)
	}

	// Kill the primary: the follower loses the stream but keeps serving.
	waitFor(t, "follower connected", func() bool {
		return getStatus(t, f.srv.URL).Connected
	})
	p.srv.Close()
	waitFor(t, "follower to notice the dead primary", func() bool {
		st := getStatus(t, f.srv.URL)
		return !st.Connected && st.LastError != ""
	})
	resp, err = http.Get(f.srv.URL + "/v1/head")
	if err != nil {
		t.Fatalf("head on disconnected follower: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("head on disconnected follower returned %d, want 200", resp.StatusCode)
	}
	st := getStatus(t, f.srv.URL)
	if st.LagSeconds <= 0 || st.LastError == "" {
		t.Errorf("disconnected status = %+v, want positive lag_seconds and a last_error", st)
	}
	if r := metricValue(t, f.srv.URL, "verlog_repl_reconnects_total"); r < 1 {
		t.Errorf("verlog_repl_reconnects_total = %v, want >= 1", r)
	}
}

// corruptingProxy forwards stream requests to the primary, mangling the
// first few bodies: a torn tail (truncation mid-frame) then a bit flip
// mid-body. Everything else passes through untouched.
type corruptingProxy struct {
	primary string
	mu      sync.Mutex
	torn    int // bodies left to truncate
	flipped int // bodies left to bit-flip
	hits    int // stream bodies actually corrupted
}

func (cp *corruptingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	resp, err := http.Get(cp.primary + r.URL.String())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.HasPrefix(r.URL.Path, "/v1/repl/stream") && resp.StatusCode == http.StatusOK && len(body) > 16 {
		cp.mu.Lock()
		switch {
		case cp.torn > 0:
			cp.torn--
			cp.hits++
			body = body[:len(body)-7] // cut mid-frame: a torn tail
		case cp.flipped > 0:
			cp.flipped--
			cp.hits++
			body = bytes.Clone(body)
			body[len(body)/2] ^= 0x40 // corrupt a frame in the middle
		}
		cp.mu.Unlock()
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// TestFollowerTornStream: torn and bit-flipped stream frames are
// discarded — never applied — and the follower re-requests and converges
// to a base equal to the primary's.
func TestFollowerTornStream(t *testing.T) {
	p := startPrimary(t, replication.Config{})
	// Commit before the follower connects so the first stream bodies are
	// multi-frame and worth corrupting.
	for i := 1; i <= 5; i++ {
		if _, err := p.repo.Apply(raiseProgram(t, i)); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
	}
	proxy := &corruptingProxy{primary: p.srv.URL, torn: 1, flipped: 1}
	ps := httptest.NewServer(proxy)
	t.Cleanup(ps.Close)

	f := startFollower(t, ps.URL)
	waitConverged(t, p.repo, f.repo, 5)

	proxy.mu.Lock()
	hits := proxy.hits
	proxy.mu.Unlock()
	if hits != 2 {
		t.Fatalf("proxy corrupted %d bodies, want 2 — the test exercised nothing", hits)
	}
	if torn := metricValue(t, f.srv.URL, "verlog_repl_torn_frames_total"); torn < 2 {
		t.Errorf("verlog_repl_torn_frames_total = %v, want >= 2", torn)
	}
	// The follower's own journal must be fully valid after the mangled
	// stream: every applied record was re-framed, CRC'd and fsynced.
	if err := f.repo.Verify(); err != nil {
		t.Errorf("follower Verify after torn stream: %v", err)
	}
}

// TestEpochFencing: a stream carrying an older epoch (a deposed primary)
// is rejected and fences the follower; a newer epoch (a legitimate
// promotion) is adopted durably before its records apply.
func TestEpochFencing(t *testing.T) {
	// Source of genuine frames: a scratch repository one commit ahead.
	src, err := repository.Init(t.TempDir()+"/src", testBase(t))
	if err != nil {
		t.Fatalf("Init src: %v", err)
	}
	if _, err := src.Apply(raiseProgram(t, 5)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	entries, _, _ := src.EntriesAfter(0)
	var frames bytes.Buffer
	for _, e := range entries {
		payload, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal entry: %v", err)
		}
		frames.Write(storage.FrameJournalRecord(payload))
	}

	// A fake primary serving those frames under a configurable epoch.
	var mu sync.Mutex
	epoch := uint64(3)
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/repl/stream") {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		e := epoch
		mu.Unlock()
		w.Header().Set(replication.HeaderEpoch, strconv.FormatUint(e, 10))
		w.Header().Set(replication.HeaderSeq, "1")
		w.Write(frames.Bytes())
	}))
	t.Cleanup(fake.Close)

	// Build the follower by hand: its epoch must be 5 BEFORE the pull
	// loop first talks to the fake, or the loop would adopt epoch 3.
	frepo, err := repository.Init(t.TempDir()+"/follower", testBase(t))
	if err != nil {
		t.Fatalf("Init follower: %v", err)
	}
	if err := frepo.AdvanceEpoch(5, 0); err != nil {
		t.Fatalf("AdvanceEpoch: %v", err)
	}
	fnode := replication.NewNode(frepo, replication.Config{
		PrimaryURL: fake.URL, PollWait: 100 * time.Millisecond,
	})
	fsrv := httptest.NewServer(server.New(frepo, server.WithReplication(fnode)))
	fnode.Start()
	t.Cleanup(func() { fnode.Stop(); fsrv.Close() })
	f := &testNode{repo: frepo, node: fnode, srv: fsrv}

	// Epoch 3 < 5: the records must not apply, and the status says fenced.
	waitFor(t, "follower fenced against the stale epoch", func() bool {
		return getStatus(t, f.srv.URL).Fenced
	})
	if _, seq := f.repo.Snapshot(); seq != 0 {
		t.Fatalf("follower applied %d records from a deposed primary", seq)
	}
	if s := metricValue(t, f.srv.URL, "verlog_repl_stale_epochs_total"); s < 1 {
		t.Errorf("verlog_repl_stale_epochs_total = %v, want >= 1", s)
	}

	// Epoch 7 > 5: adopted durably, records applied, fence cleared.
	mu.Lock()
	epoch = 7
	mu.Unlock()
	waitConverged(t, src, f.repo, 1)
	if got := f.repo.Epoch(); got != 7 {
		t.Errorf("follower epoch = %d, want the adopted 7", got)
	}
	if st := getStatus(t, f.srv.URL); st.Fenced {
		t.Errorf("follower still fenced after adopting the newer epoch: %+v", st)
	}
}

// TestDeposedPrimaryRejoinsPastPromotionPoint: a primary dies with an
// unreplicated journal suffix, the follower is promoted and commits its
// own history, and the deposed primary rejoins as a follower. Its suffix
// diverges from the new primary's records at the same seqs; the fence
// seq in the stream response must force it through a snapshot bootstrap
// so it converges to the new history instead of grafting the stream onto
// its fork and silently serving wrong reads forever.
func TestDeposedPrimaryRejoinsPastPromotionPoint(t *testing.T) {
	p := startPrimary(t, replication.Config{})
	f := startFollower(t, p.srv.URL)

	// Shared history: seqs 1..2 on both sides.
	for i := 1; i <= 2; i++ {
		if _, err := p.repo.Apply(raiseProgram(t, 10*i)); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
	}
	waitConverged(t, p.repo, f.repo, 2)
	f.node.Stop()

	// The primary runs ahead unreplicated (seq 3), then "dies".
	if _, err := p.repo.Apply(raiseProgram(t, 999)); err != nil {
		t.Fatalf("Apply unreplicated: %v", err)
	}
	p.srv.Close()

	// Failover: the follower is promoted at seq 2 and commits a different
	// history for seqs 3..4.
	if epoch, err := f.node.Promote(0); err != nil || epoch != 2 {
		t.Fatalf("Promote = %d, %v; want epoch 2", epoch, err)
	}
	for i := 3; i <= 4; i++ {
		if _, err := f.repo.Apply(raiseProgram(t, i)); err != nil {
			t.Fatalf("Apply on promoted follower %d: %v", i, err)
		}
	}

	// The deposed primary rejoins as a follower of the new primary. Its
	// head (3) is past the promotion point (2): the fence must reject the
	// resume and rebuild it from the new primary's snapshot.
	rejoin := replication.NewNode(p.repo, replication.Config{
		PrimaryURL: f.srv.URL,
		FollowerID: "deposed-primary",
		PollWait:   100 * time.Millisecond,
	})
	rejoin.Start()
	t.Cleanup(rejoin.Stop)

	waitConverged(t, f.repo, p.repo, 4)
	if got := p.repo.Epoch(); got != 2 {
		t.Errorf("rejoined node epoch = %d, want the adopted 2", got)
	}
	// Convergence went via snapshot transfer: the rejoined node's snapshot
	// is the new primary's head, not its own pre-failover snapshot at 0.
	if got := p.repo.SnapshotSeq(); got != 4 {
		t.Errorf("rejoined node snapshot seq = %d, want 4 (bootstrapped from the new primary)", got)
	}
}

// TestDeposedPrimaryAheadOfNewPrimary: the deposed primary's head is past
// the new primary's — it asks for records after a seq the new primary has
// never reached. The stream must answer snapshot_required (waiting would
// hang, serving would be impossible), and the rejoining node must drop
// its forked suffix and converge onto the shorter, authoritative history.
func TestDeposedPrimaryAheadOfNewPrimary(t *testing.T) {
	p := startPrimary(t, replication.Config{})
	f := startFollower(t, p.srv.URL)

	if _, err := p.repo.Apply(raiseProgram(t, 10)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	waitConverged(t, p.repo, f.repo, 1)
	f.node.Stop()

	// Two unreplicated applies, then death: the deposed primary is at seq
	// 3 while the promoted follower stays at 1.
	for i := 2; i <= 3; i++ {
		if _, err := p.repo.Apply(raiseProgram(t, 100*i)); err != nil {
			t.Fatalf("Apply unreplicated %d: %v", i, err)
		}
	}
	p.srv.Close()
	if epoch, err := f.node.Promote(0); err != nil || epoch != 2 {
		t.Fatalf("Promote = %d, %v; want epoch 2", epoch, err)
	}

	rejoin := replication.NewNode(p.repo, replication.Config{
		PrimaryURL: f.srv.URL,
		FollowerID: "deposed-primary",
		PollWait:   100 * time.Millisecond,
	})
	rejoin.Start()
	t.Cleanup(rejoin.Stop)

	// The rejoined node must come BACK to seq 1 — its seqs 2..3 never
	// happened on the surviving history.
	waitFor(t, "deposed primary to reset onto the new history", func() bool {
		_, seq := p.repo.Snapshot()
		return seq == 1 && p.repo.SnapshotSeq() == 1
	})
	pb, _ := f.repo.Snapshot()
	rb, _ := p.repo.Snapshot()
	if !pb.Equal(rb) {
		t.Fatal("rejoined node's base diverges from the new primary's")
	}
}

// TestBrokenStreamPathReportsUnhealthy: a path that serves 200s whose
// bodies never contain one usable record (every response cut or corrupted
// at the first frame) is a failure, not a healthy idle stream — the
// follower must report disconnected with a last_error and back off rather
// than hot-loop while Status claims all is well.
func TestBrokenStreamPathReportsUnhealthy(t *testing.T) {
	p := startPrimary(t, replication.Config{})
	if _, err := p.repo.Apply(raiseProgram(t, 10)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// A proxy that mangles EVERY stream body beyond recovery.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(p.srv.URL + r.URL.String())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		if strings.HasPrefix(r.URL.Path, "/v1/repl/stream") && resp.StatusCode == http.StatusOK {
			w.Write([]byte("v1 00000000 {cut")) // first frame corrupt, no newline
		}
	}))
	t.Cleanup(proxy.Close)

	f := startFollower(t, proxy.URL)
	waitFor(t, "follower to report the broken path", func() bool {
		st := getStatus(t, f.srv.URL)
		return !st.Connected && st.LastError != ""
	})
	if _, seq := f.repo.Snapshot(); seq != 0 {
		t.Errorf("follower applied %d records from a fully corrupt stream", seq)
	}
	if r := metricValue(t, f.srv.URL, "verlog_repl_reconnects_total"); r < 1 {
		t.Errorf("verlog_repl_reconnects_total = %v, want >= 1 (the broken path must back off)", r)
	}
}

// TestCompactRetainsForFollower: compaction on the primary keeps the
// journal suffix a connected follower still needs, so the follower
// resumes mid-stream without a snapshot transfer. The regression this
// guards: Compact folding everything and stranding every follower.
func TestCompactRetainsForFollower(t *testing.T) {
	p := startPrimary(t, replication.Config{})
	f := startFollower(t, p.srv.URL)

	for i := 1; i <= 2; i++ {
		if _, err := p.repo.Apply(raiseProgram(t, i)); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
	}
	waitConverged(t, p.repo, f.repo, 2)
	// Make sure the primary has seen the ack for seq 2 before pausing.
	waitFor(t, "primary ack at 2", func() bool {
		st := getStatus(t, p.srv.URL)
		return len(st.Followers) == 1 && st.Followers[0].AckSeq == 2
	})
	f.node.Stop() // follower pauses, still live in the primary's table

	for i := 3; i <= 5; i++ {
		if _, err := p.repo.Apply(raiseProgram(t, i)); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
	}
	if err := p.repo.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := p.repo.SnapshotSeq(); got != 2 {
		t.Fatalf("snapshot seq after compact = %d, want 2 (the follower's ack pins retention)", got)
	}

	f.node.Start()
	waitConverged(t, p.repo, f.repo, 5)
	if loads := metricValue(t, f.srv.URL, "verlog_repl_snapshot_loads_total"); loads != 0 {
		t.Errorf("follower bootstrapped %v times, want 0 — the retained suffix should have sufficed", loads)
	}
}

// TestStaleFollowerBootstrapsViaSnapshot: a follower behind the primary's
// retention bound gets 409 snapshot_required and recovers by snapshot
// transfer, converging to an equal base.
func TestStaleFollowerBootstrapsViaSnapshot(t *testing.T) {
	p := startPrimary(t, replication.Config{MaxRetention: 2})
	f := startFollower(t, p.srv.URL)

	if _, err := p.repo.Apply(raiseProgram(t, 1)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	waitConverged(t, p.repo, f.repo, 1)
	f.node.Stop()

	// Run far past the retention bound, then compact.
	for i := 2; i <= 8; i++ {
		if _, err := p.repo.Apply(raiseProgram(t, i)); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
	}
	if err := p.repo.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := p.repo.SnapshotSeq(); got != 6 { // head 8 - MaxRetention 2
		t.Fatalf("snapshot seq after compact = %d, want 6 (max retention clamps the follower's pin)", got)
	}

	f.node.Start()
	waitConverged(t, p.repo, f.repo, 8)
	// The counter increments after the reset publishes (and the head cache
	// rewrites), so poll rather than assert the post-convergence instant.
	waitFor(t, "snapshot load counted", func() bool {
		return metricValue(t, f.srv.URL, "verlog_repl_snapshot_loads_total") >= 1
	})
	if err := f.repo.Verify(); err != nil {
		t.Errorf("follower Verify after snapshot bootstrap: %v", err)
	}
}

// TestPromoteIsIdempotentAndFences: promotion advances the epoch once,
// reports the same epoch on repeat, and the promoted node accepts writes.
func TestPromoteIsIdempotent(t *testing.T) {
	p := startPrimary(t, replication.Config{})
	f := startFollower(t, p.srv.URL)
	if _, err := p.repo.Apply(raiseProgram(t, 1)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	waitConverged(t, p.repo, f.repo, 1)

	resp, err := http.Post(f.srv.URL+"/v1/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	var pr struct {
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
		Seq   int    `json:"head_seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decode promote response: %v", err)
	}
	resp.Body.Close()
	if pr.Role != "primary" || pr.Epoch != 2 || pr.Seq != 1 {
		t.Fatalf("promote = %+v, want primary at epoch 2, seq 1", pr)
	}

	// Again: same epoch, no second advance.
	if epoch, err := f.node.Promote(0); err != nil || epoch != 2 {
		t.Errorf("second Promote = %d, %v; want 2, nil", epoch, err)
	}

	// The promoted node takes writes.
	if _, err := f.repo.Apply(raiseProgram(t, 2)); err != nil {
		t.Errorf("apply on promoted node: %v", err)
	}
	if ro, _ := f.node.ReadOnly(); ro {
		t.Error("promoted node still reports read-only")
	}
}

// TestPromoteExplicitTarget: epochs fence only while unique, so an
// operator who must issue more than one promotion per failover passes
// each candidate a distinct target epoch. The target is honored, retrying
// the same target is idempotent, and a non-advancing target is rejected.
func TestPromoteExplicitTarget(t *testing.T) {
	p := startPrimary(t, replication.Config{})
	f := startFollower(t, p.srv.URL)
	if _, err := p.repo.Apply(raiseProgram(t, 1)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	waitConverged(t, p.repo, f.repo, 1)

	resp, err := http.Post(f.srv.URL+"/v1/repl/promote?epoch=9", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	var pr struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decode promote response: %v", err)
	}
	resp.Body.Close()
	if pr.Epoch != 9 {
		t.Fatalf("promote epoch = %d, want the explicit target 9", pr.Epoch)
	}
	if epoch, err := f.node.Promote(9); err != nil || epoch != 9 {
		t.Errorf("retry of the same target = %d, %v; want 9, nil", epoch, err)
	}
	if _, err := f.node.Promote(3); err == nil {
		t.Error("promote to an epoch behind the current one succeeded")
	}
	resp, err = http.Post(f.srv.URL+"/v1/repl/promote?epoch=3", "application/json", nil)
	if err != nil {
		t.Fatalf("promote with stale target: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale promote target returned %d, want 409", resp.StatusCode)
	}
}
