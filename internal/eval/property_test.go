package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"verlog/internal/parser"
	"verlog/internal/term"
	"verlog/internal/workload"
)

// TestPropertyStrategiesAgreeOnRandomWorkloads: naive and semi-naive
// evaluation compute the same fixpoint and the same updated object base on
// randomized enterprise workloads.
func TestPropertyStrategiesAgreeOnRandomWorkloads(t *testing.T) {
	p := mustProgram(t, workload.EnterpriseProgram)
	for seed := int64(0); seed < 8; seed++ {
		spec := workload.EnterpriseSpec{Employees: 60, Seed: seed}
		ob := spec.ObjectBase()
		rn, err := Run(ob, p, Options{Strategy: Naive})
		if err != nil {
			t.Fatalf("seed %d naive: %v", seed, err)
		}
		rs, err := Run(ob, p, Options{Strategy: SemiNaive})
		if err != nil {
			t.Fatalf("seed %d semi-naive: %v", seed, err)
		}
		if !rn.Result.Equal(rs.Result) || !rn.Final.Equal(rs.Final) {
			t.Errorf("seed %d: strategies disagree", seed)
		}
	}
}

// TestPropertyStrategiesAgreeOnGenealogies: same property on the recursive
// workload, where semi-naive evaluation differs most.
func TestPropertyStrategiesAgreeOnGenealogies(t *testing.T) {
	p := mustProgram(t, workload.AncestorsProgram)
	for _, spec := range []workload.GenealogySpec{
		{Generations: 3, Branching: 2},
		{Generations: 4, Branching: 3},
		{Generations: 6, Branching: 1},
		{Generations: 2, Branching: 5, Roots: 3},
	} {
		ob := spec.ObjectBase()
		rn, err := Run(ob, p, Options{Strategy: Naive})
		if err != nil {
			t.Fatalf("%+v naive: %v", spec, err)
		}
		rs, err := Run(ob, p, Options{Strategy: SemiNaive})
		if err != nil {
			t.Fatalf("%+v semi-naive: %v", spec, err)
		}
		if !rn.Result.Equal(rs.Result) {
			t.Errorf("%+v: fixpoints differ", spec)
		}
	}
}

// TestPropertyFrame: objects not matched by any rule keep exactly their
// original state in ob' — the frame property the copy semantics must
// preserve (Section 3, footnote 4).
func TestPropertyFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		threshold := rng.Intn(100)
		ob := workload.TouchedSpec{Objects: 80, Methods: 3}.ObjectBase()
		p := mustProgram(t, workload.TouchProgram(threshold))
		res := mustRun(t, ob, p, Options{})
		for i := 0; i < 80; i++ {
			o := term.Sym(fmt.Sprintf("obj%d", i))
			v := term.GVID{Object: o}
			touched := i%100 < threshold
			origVal := term.NewFact(v, "val", term.Int(int64(i)))
			newVal := term.NewFact(v, "val", term.Int(int64(i)+1))
			if touched {
				if !res.Final.Has(newVal) || res.Final.Has(origVal) {
					t.Fatalf("trial %d: touched obj%d not updated", trial, i)
				}
			} else {
				if !res.Final.Has(origVal) || res.Final.Has(newVal) {
					t.Fatalf("trial %d: untouched obj%d changed", trial, i)
				}
			}
			// Payload facts survive in both cases.
			if !res.Final.Has(term.NewFact(v, "payload0", term.Int(0))) {
				t.Fatalf("trial %d: obj%d lost payload", trial, i)
			}
		}
	}
}

// TestPropertyIdempotentOnFixpoint: applying a program whose rules only
// fire on initial versions twice in a row yields a second run whose
// versions re-derive deterministically — i.e. applying the raise program
// to its own output raises again by exactly 10% (no hidden state).
func TestPropertyReapplication(t *testing.T) {
	ob := mustBase(t, `henry.isa -> empl / sal -> 100.`)
	p := mustProgram(t, workload.SalaryRaiseProgram)
	res1 := mustRun(t, ob, p, Options{})
	res2 := mustRun(t, res1.Final, p, Options{})
	wantFact(t, res1.Final, `henry.sal -> 110.`)
	wantFact(t, res2.Final, `henry.sal -> 121.`)
}

// TestPropertyFinalizeIdempotent: finalizing an already-final base (all
// versions are plain objects) is the identity.
func TestPropertyFinalizeIdempotent(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ob := workload.EnterpriseSpec{Employees: 30, Seed: seed}.ObjectBase()
		p := mustProgram(t, workload.EnterpriseProgram)
		res := mustRun(t, ob, p, Options{})
		again := Finalize(res.Final)
		if !again.Equal(res.Final) {
			t.Errorf("seed %d: finalize not idempotent on final base:\n%s\nvs\n%s",
				seed, parser.FormatFacts(res.Final, true), parser.FormatFacts(again, true))
		}
	}
}

// TestPropertyVersionImmutability: once created, the state of a version at
// a lower stratum never changes while higher strata run — the invariant
// condition (a) exists to protect. We check it by recording mod-version
// states after the run and asserting they match what stratum 1 alone
// produces.
func TestPropertyVersionImmutability(t *testing.T) {
	baseSrc := `
phil.isa -> empl / pos -> mgr / sal -> 4000.
bob.isa -> empl / boss -> phil / sal -> 4200.
`
	full := mustProgram(t, workload.EnterpriseProgram)
	firstStratumOnly := mustProgram(t, `
rule1: mod[E].sal -> (S, S') <- E.isa -> empl / pos -> mgr / sal -> S, S' = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S') <- E.isa -> empl / sal -> S, !E.pos -> mgr, S' = S * 1.1.
`)
	resFull := mustRun(t, mustBase(t, baseSrc), full, Options{})
	resFirst := mustRun(t, mustBase(t, baseSrc), firstStratumOnly, Options{})
	for _, o := range []string{"phil", "bob"} {
		v := term.GV(term.Sym(o), term.Mod)
		a, b := resFull.Result.StateOf(v), resFirst.Result.StateOf(v)
		if a == nil || b == nil || !a.Equal(b) {
			t.Errorf("mod(%s) state changed after its stratum", o)
		}
	}
}
