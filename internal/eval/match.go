package eval

import (
	"errors"
	"fmt"

	"verlog/internal/builtin"
	"verlog/internal/objectbase"
	"verlog/internal/term"
	"verlog/internal/unify"
)

// errStopEnum aborts an enumeration early once an existential check has
// its witness; it never escapes the matcher.
var errStopEnum = errors.New("eval: stop enumeration")

// matcher enumerates the substitutions that make body literals true with
// respect to an object base, implementing the body-position truth
// definitions of Section 3.
//
// Matching works destructively on one shared substitution with a
// backtracking trail: bindings made while exploring a branch are undone
// when the branch is exhausted. Continuations therefore must read the
// substitution immediately and never retain it.
//
// A matcher carries scratch free-lists for the candidate slices each
// literal enumeration collects before invoking its continuation.
// Enumerations nest (the continuation matches the next literal), so the
// free-lists work as stacks: an enumeration pops a buffer, recurses, and
// pushes it back when done. A matcher is therefore single-goroutine
// state; parallel rule matching gives each worker its own (newMatcher).
type matcher struct {
	base *objectbase.Base
	vids [][]term.GVID
	oids [][]term.OID
	krs  [][]keyResult
}

// keyResult is one (method key, result) application collected while
// scanning a method with unbound arguments.
type keyResult struct {
	key term.MethodKey
	r   term.OID
}

func newMatcher(base *objectbase.Base) *matcher { return &matcher{base: base} }

func (m *matcher) getVIDs() []term.GVID {
	if n := len(m.vids); n > 0 {
		buf := m.vids[n-1]
		m.vids = m.vids[:n-1]
		return buf
	}
	return nil
}

func (m *matcher) putVIDs(buf []term.GVID) { m.vids = append(m.vids, buf[:0]) }

func (m *matcher) getOIDs() []term.OID {
	if n := len(m.oids); n > 0 {
		buf := m.oids[n-1]
		m.oids = m.oids[:n-1]
		return buf
	}
	return nil
}

func (m *matcher) putOIDs(buf []term.OID) { m.oids = append(m.oids, buf[:0]) }

func (m *matcher) getKRs() []keyResult {
	if n := len(m.krs); n > 0 {
		buf := m.krs[n-1]
		m.krs = m.krs[:n-1]
		return buf
	}
	return nil
}

func (m *matcher) putKRs(buf []keyResult) { m.krs = append(m.krs, buf[:0]) }

// matchLiteral calls k once for every extension of s under which l is
// true. Bindings added for a branch are visible inside k and removed
// before matchLiteral returns.
func (m *matcher) matchLiteral(l term.Literal, s unify.Subst, tr *unify.Trail, k func() error) error {
	if l.Neg {
		ok, err := m.groundTruth(l.Atom, s, tr)
		if err != nil {
			return err
		}
		if !ok {
			return k()
		}
		return nil
	}
	switch a := l.Atom.(type) {
	case term.VersionAtom:
		return m.matchVersionPattern(a.V, a.App, s, tr, k)
	case term.UpdateAtom:
		switch a.Kind {
		case term.Ins:
			// ins[v].m -> r is true iff ins(v).m -> r holds.
			return m.matchVersionPattern(a.V.Push(term.Ins), a.App, s, tr, k)
		case term.Del:
			return m.matchDelBody(a, s, tr, k)
		case term.Mod:
			return m.matchModBody(a, s, tr, k)
		default:
			return fmt.Errorf("eval: invalid update kind %v", a.Kind)
		}
	case term.BuiltinAtom:
		mark := tr.Mark()
		ok, err := builtin.SolveTrail(a, s, tr)
		if err != nil {
			tr.Undo(s, mark)
			return err
		}
		if ok {
			err = k()
		}
		tr.Undo(s, mark)
		return err
	default:
		return fmt.Errorf("eval: unknown atom type %T", l.Atom)
	}
}

// forEachBase enumerates candidate ground bindings of the version pattern's
// base. With a bound base it yields the single resolved VID; otherwise it
// scans the index of VIDs that have the given method on the pattern's path.
func (m *matcher) forEachBase(v term.VersionID, method string, s unify.Subst, tr *unify.Trail, k func(g term.GVID) error) error {
	if v.Any {
		return m.forEachAnyVersion(v, method, s, tr, k)
	}
	if g, ok := s.ResolveVID(v); ok {
		return k(g)
	}
	cands := m.getVIDs()
	m.base.ForEachVIDWith(v.Path, method, func(g term.GVID) { cands = append(cands, g) })
	mark := tr.Mark()
	for _, g := range cands {
		if tr.MatchObj(s, v.Base, g.Object) {
			if err := k(g); err != nil {
				tr.Undo(s, mark)
				m.putVIDs(cands)
				return err
			}
		}
		tr.Undo(s, mark)
	}
	m.putVIDs(cands)
	return nil
}

// forEachAnyVersion enumerates candidate versions for the any(base)
// wildcard: every version, at any path, of any object matching base that
// carries the method. The wildcard is existential — k may fire several
// times for different versions of the same object.
func (m *matcher) forEachAnyVersion(v term.VersionID, method string, s unify.Subst, tr *unify.Trail, k func(g term.GVID) error) error {
	cands := m.getVIDs()
	if o, ok := s.ResolveOID(v.Base); ok {
		m.base.ForEachVIDWithMethod(method, func(g term.GVID) {
			if g.Object == o {
				cands = append(cands, g)
			}
		})
	} else {
		m.base.ForEachVIDWithMethod(method, func(g term.GVID) { cands = append(cands, g) })
	}
	mark := tr.Mark()
	for _, g := range cands {
		if tr.MatchObj(s, v.Base, g.Object) {
			if err := k(g); err != nil {
				tr.Undo(s, mark)
				m.putVIDs(cands)
				return err
			}
		}
		tr.Undo(s, mark)
	}
	m.putVIDs(cands)
	return nil
}

// matchVersionPattern enumerates matches of v.m@args -> r against the base.
func (m *matcher) matchVersionPattern(v term.VersionID, app term.MethodApp, s unify.Subst, tr *unify.Trail, k func() error) error {
	return m.forEachBase(v, app.Method, s, tr, func(g term.GVID) error {
		return m.matchApp(g, app, s, tr, k)
	})
}

// matchApp enumerates matches of the method application on the ground VID
// g, extending s through the trail.
func (m *matcher) matchApp(g term.GVID, app term.MethodApp, s unify.Subst, tr *unify.Trail, k func() error) error {
	return m.matchAppOn(g, app, s, tr, func(term.MethodKey, term.OID) error { return k() })
}

// resolveKey resolves the method key of app under s; ok is false when an
// argument is unbound.
func resolveKey(app term.MethodApp, s unify.Subst) (term.MethodKey, bool) {
	if len(app.Args) == 0 {
		return term.MethodKey{Method: app.Method}, true
	}
	args := make([]term.OID, len(app.Args))
	for i, a := range app.Args {
		o, ok := s.ResolveOID(a)
		if !ok {
			return term.MethodKey{}, false
		}
		args[i] = o
	}
	return term.MethodKey{Method: app.Method, Args: term.EncodeOIDs(args)}, true
}

// matchAppOn enumerates applications of app on the ground VID g, invoking
// k with the resolved key and result while the bindings are in place.
func (m *matcher) matchAppOn(g term.GVID, app term.MethodApp, s unify.Subst, tr *unify.Trail, k func(key term.MethodKey, r term.OID) error) error {
	if key, ok := resolveKey(app, s); ok {
		if r, ok := s.ResolveOID(app.Result); ok {
			if m.base.Has(term.Fact{V: g, Method: key.Method, Args: key.Args, Result: r}) {
				return k(key, r)
			}
			return nil
		}
		results := m.getOIDs()
		m.base.ForEachResult(g, key, func(r term.OID) { results = append(results, r) })
		mark := tr.Mark()
		for _, r := range results {
			if tr.MatchObj(s, app.Result, r) {
				if err := k(key, r); err != nil {
					tr.Undo(s, mark)
					m.putOIDs(results)
					return err
				}
			}
			tr.Undo(s, mark)
		}
		m.putOIDs(results)
		return nil
	}
	// Arguments contain unbound variables: scan all applications of the
	// method on g.
	apps := m.getKRs()
	m.base.ForEachOfMethod(g, app.Method, func(key term.MethodKey, r term.OID) {
		apps = append(apps, keyResult{key, r})
	})
	mark := tr.Mark()
	for _, x := range apps {
		if tr.MatchArgs(s, app.Args, x.key.Args.Decode()) && tr.MatchObj(s, app.Result, x.r) {
			if err := k(x.key, x.r); err != nil {
				tr.Undo(s, mark)
				m.putKRs(apps)
				return err
			}
		}
		tr.Undo(s, mark)
	}
	m.putKRs(apps)
	return nil
}

// matchDelBody enumerates matches of a positive del-update-term in body
// position: del[v].m -> r holds iff v*.m -> r is in the base, the version
// del(v) exists, and del(v).m -> r is not in the base (Section 3).
func (m *matcher) matchDelBody(a term.UpdateAtom, s unify.Subst, tr *unify.Trail, k func() error) error {
	// Candidate bases come from the exists applications of del(v): a true
	// del-term requires the deleted version to exist.
	target := a.V.Push(term.Del)
	return m.forEachBase(target, term.ExistsMethod, s, tr, func(w term.GVID) error {
		if !m.base.Exists(w) {
			return nil
		}
		v := term.GVID{Object: w.Object, Path: w.Path[:w.Path.Len()-1]}
		vstar, ok := m.base.VStar(v)
		if !ok {
			return nil
		}
		// Enumerate v*.m@args -> r, then require del(v).m@args -> r absent.
		return m.matchAppOn(vstar, a.App, s, tr, func(key term.MethodKey, r term.OID) error {
			if m.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: r}) {
				return nil
			}
			return k()
		})
	})
}

// matchModBody enumerates matches of a positive mod-update-term in body
// position: mod[v].m -> (r, r') holds iff v*.m -> r is in the base,
// mod(v).m -> r' is in the base, and — when r differs from r' —
// mod(v).m -> r is absent (Section 3; for r = r' the presence of
// mod(v).m -> r is exactly the second condition).
func (m *matcher) matchModBody(a term.UpdateAtom, s unify.Subst, tr *unify.Trail, k func() error) error {
	target := a.V.Push(term.Mod)
	return m.forEachBase(target, a.App.Method, s, tr, func(w term.GVID) error {
		v := term.GVID{Object: w.Object, Path: w.Path[:w.Path.Len()-1]}
		vstar, ok := m.base.VStar(v)
		if !ok {
			return nil
		}
		return m.matchAppOn(vstar, a.App, s, tr, func(key term.MethodKey, r term.OID) error {
			// r is bound; now enumerate r' over mod(v).m@args.
			newResults := m.getOIDs()
			m.base.ForEachResult(w, key, func(x term.OID) { newResults = append(newResults, x) })
			mark := tr.Mark()
			for _, rp := range newResults {
				if !tr.MatchObj(s, a.NewResult, rp) {
					tr.Undo(s, mark)
					continue
				}
				if r != rp && m.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: r}) {
					tr.Undo(s, mark)
					continue
				}
				if err := k(); err != nil {
					tr.Undo(s, mark)
					m.putOIDs(newResults)
					return err
				}
				tr.Undo(s, mark)
			}
			m.putOIDs(newResults)
			return nil
		})
	})
}

// groundTruth decides a fully bound atom, for negated literals. It errors
// on unbound variables, which safe rules with a valid plan never produce.
func (m *matcher) groundTruth(a term.Atom, s unify.Subst, tr *unify.Trail) (bool, error) {
	switch x := a.(type) {
	case term.VersionAtom:
		if x.V.Any {
			// The wildcard is existential: a negated any(...) literal is
			// true when no version satisfies the application.
			found := false
			err := m.matchVersionPattern(x.V, x.App, s, tr, func() error {
				found = true
				return errStopEnum
			})
			if err != nil && err != errStopEnum {
				return false, err
			}
			return found, nil
		}
		f, err := resolveFact(x.V, x.App, s)
		if err != nil {
			return false, err
		}
		return m.base.Has(f), nil
	case term.UpdateAtom:
		return m.groundUpdateTruth(x, s)
	case term.BuiltinAtom:
		// Fully bound in safe rules: SolveTrail cannot bind, but guard with
		// a mark anyway so unsafe inputs cannot corrupt the substitution.
		mark := tr.Mark()
		ok, err := builtin.SolveTrail(x, s, tr)
		tr.Undo(s, mark)
		return ok, err
	default:
		return false, fmt.Errorf("eval: unknown atom type %T", a)
	}
}

// groundUpdateTruth decides a fully bound update-term in body position.
func (m *matcher) groundUpdateTruth(x term.UpdateAtom, s unify.Subst) (bool, error) {
	v, ok := s.ResolveVID(x.V)
	if !ok {
		return false, fmt.Errorf("eval: unbound version base in %s", x)
	}
	key, ok := resolveKey(x.App, s)
	if !ok {
		return false, fmt.Errorf("eval: unbound argument in %s", x)
	}
	r, ok := s.ResolveOID(x.App.Result)
	if !ok {
		return false, fmt.Errorf("eval: unbound result in %s", x)
	}
	w := v.Push(x.Kind)
	switch x.Kind {
	case term.Ins:
		return m.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: r}), nil
	case term.Del:
		vstar, ok := m.base.VStar(v)
		if !ok {
			return false, nil
		}
		return m.base.Has(term.Fact{V: vstar, Method: key.Method, Args: key.Args, Result: r}) &&
			m.base.Exists(w) &&
			!m.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: r}), nil
	case term.Mod:
		rp, ok := s.ResolveOID(x.NewResult)
		if !ok {
			return false, fmt.Errorf("eval: unbound new result in %s", x)
		}
		vstar, ok := m.base.VStar(v)
		if !ok {
			return false, nil
		}
		if !m.base.Has(term.Fact{V: vstar, Method: key.Method, Args: key.Args, Result: r}) {
			return false, nil
		}
		if !m.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: rp}) {
			return false, nil
		}
		if r != rp && m.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: r}) {
			return false, nil
		}
		return true, nil
	default:
		return false, fmt.Errorf("eval: invalid update kind %v", x.Kind)
	}
}

// resolveFact resolves a fully bound version atom to a fact.
func resolveFact(v term.VersionID, app term.MethodApp, s unify.Subst) (term.Fact, error) {
	g, ok := s.ResolveVID(v)
	if !ok {
		return term.Fact{}, fmt.Errorf("eval: unbound version base in %s.%s", v, app)
	}
	key, ok := resolveKey(app, s)
	if !ok {
		return term.Fact{}, fmt.Errorf("eval: unbound argument in %s.%s", v, app)
	}
	r, ok := s.ResolveOID(app.Result)
	if !ok {
		return term.Fact{}, fmt.Errorf("eval: unbound result in %s.%s", v, app)
	}
	return term.Fact{V: g, Method: key.Method, Args: key.Args, Result: r}, nil
}
