package eval

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"verlog/internal/objectbase"
	"verlog/internal/obs"
	"verlog/internal/strata"
	"verlog/internal/term"
)

// Strategy selects the fixpoint iteration scheme within a stratum.
type Strategy uint8

const (
	// SemiNaive re-derives, after the first iteration of a stratum, only
	// rule firings supported by at least one fact added in the previous
	// iteration. It is the default.
	SemiNaive Strategy = iota
	// Naive re-enumerates every rule against the full base each iteration.
	Naive
)

func (s Strategy) String() string {
	if s == Naive {
		return "naive"
	}
	return "semi-naive"
}

// Options configures a run.
type Options struct {
	// Strategy selects naive or semi-naive iteration (default SemiNaive).
	Strategy Strategy
	// MaxIterations bounds the iterations per stratum; 0 means the default
	// of 1_000_000. Safe stratified programs terminate on their own; the
	// bound catches engine bugs and deliberately unsafe experiments.
	MaxIterations int
	// Trace records every fired update with its rule, stratum, iteration.
	Trace bool
	// ForbidNewObjects rejects inserts on objects unknown to the base
	// (creating fresh objects is an extension beyond the paper).
	ForbidNewObjects bool
	// Parallelism sets the worker count for rule matching and state
	// computation within an iteration (both read-only over the base).
	// Values below 2 evaluate sequentially. The computed fixpoint is
	// identical; only wall-clock time changes.
	Parallelism int
	// StaticPlanner disables statistics-based join ordering: bodies are
	// evaluated with the source-order planner instead of ordering
	// generators by index cardinality. The fixpoint is identical; this
	// exists for the planner ablation experiment.
	StaticPlanner bool
	// Span, when non-nil, collects the evaluation as a span tree under it
	// (see internal/obs): stratify → stratum[i] → iteration[j] → rule[k],
	// with delta sizes, firing counts and wall time per node, and
	// runtime/pprof labels (stratum, rule) set around rule matching so CPU
	// profiles attribute to rules. Nil (the default) skips all of it.
	Span *obs.Span
}

// TraceEvent records one fired update during evaluation.
type TraceEvent struct {
	Stratum   int
	Iteration int
	Rule      string
	Update    Update
}

func (t TraceEvent) String() string {
	return fmt.Sprintf("[stratum %d, iteration %d] %s fires %s", t.Stratum+1, t.Iteration, t.Rule, t.Update)
}

// RuleStat aggregates one rule's activity across a run. The stats are
// always collected (a handful of integer adds per iteration); Span-level
// tracing is not required.
type RuleStat struct {
	// Rule is the rule's label (name or r<index>).
	Rule string `json:"rule"`
	// Stratum is the 1-based stratum the rule was assigned to.
	Stratum int `json:"stratum"`
	// Fired counts the distinct ground updates first derived by this rule
	// (each update is attributed to the rule that fired it first, so the
	// per-rule Fired values sum to Result.Fired).
	Fired int `json:"fired"`
	// Emitted counts every update the rule emitted, including duplicates
	// of already-fired updates in later iterations.
	Emitted int `json:"emitted"`
	// Matched counts complete body matches (head truth test not yet
	// applied) — the raw join work the rule caused.
	Matched int `json:"matched"`
	// Iterations is how many T_P iterations evaluated the rule.
	Iterations int `json:"iterations"`
	// TimeUS is the wall-clock microseconds spent matching the rule,
	// summed over its step-1 tasks (under parallelism, task times overlap).
	TimeUS int64 `json:"time_us"`
}

// StratumTiming is the cost of one stratum's fixpoint.
type StratumTiming struct {
	// Duration is the wall-clock time the stratum's T_P iteration took.
	Duration time.Duration
	// Iterations is how many T_P applications it needed.
	Iterations int
}

// Stats carries per-stage timings across the layers of one apply. eval.Run
// fills Stratify, Strata, Copy and Eval; core.Apply adds Safety; the
// repository adds ConstraintCheck and Commit; the server adds Parse. The
// stage names follow the paper's pipeline: parse, safety, stratification,
// per-stratum T_P fixpoints, the copy phase building ob' (Finalize), and
// the apply phase committing the result.
type Stats struct {
	// Parse is the time spent parsing the program text (callers that start
	// from a parsed program leave it zero).
	Parse time.Duration
	// Safety is the safety check over every rule.
	Safety time.Duration
	// Stratify is the stratification of the program.
	Stratify time.Duration
	// Strata is the per-stratum fixpoint cost, in stratum order.
	Strata []StratumTiming
	// Copy is the copy phase: building the updated object base ob' from the
	// fixpoint (Finalize).
	Copy time.Duration
	// Eval is the total time inside eval.Run (stratify through copy).
	Eval time.Duration
	// ConstraintCheck is the integrity-constraint verification of the
	// updated base (repository layer).
	ConstraintCheck time.Duration
	// Commit is the apply phase: diff computation, journal append (with
	// fsync) and head replacement (repository layer).
	Commit time.Duration
}

// Result is the outcome of running an update-program.
type Result struct {
	// Result is result(P): the fixpoint object base holding every version
	// derived during evaluation.
	Result *objectbase.Base
	// Final is the updated object base ob' of Section 5, built from each
	// object's final version.
	Final *objectbase.Base
	// Assignment is the stratification used.
	Assignment *strata.Assignment
	// Iterations records how many T_P applications each stratum took.
	Iterations []int
	// Fired is the total number of distinct ground updates fired.
	Fired int
	// Trace holds fired-update events when Options.Trace was set.
	Trace []TraceEvent
	// RuleStats aggregates per-rule firing counts, match work and wall
	// time, hottest (most time) first. Always filled.
	RuleStats []RuleStat
	// Stats holds per-stage timings for this run; layers above eval add
	// their own stages (see Stats).
	Stats Stats
}

// LinearityError reports a violation of version-linearity (Section 5): two
// versions of the same object that are not subterm-comparable.
type LinearityError struct {
	Object term.OID
	A, B   term.GVID
}

func (e *LinearityError) Error() string {
	return fmt.Sprintf("eval: result is not version-linear: versions %s and %s of object %s are not subterm-comparable", e.A, e.B, e.Object)
}

// IterationLimitError reports that a stratum did not reach its fixpoint
// within Options.MaxIterations.
type IterationLimitError struct {
	Stratum int
	Limit   int
}

func (e *IterationLimitError) Error() string {
	return fmt.Sprintf("eval: stratum %d did not reach a fixpoint within %d iterations", e.Stratum+1, e.Limit)
}

// NewObjectError reports an insert on an object unknown to the base when
// Options.ForbidNewObjects is set.
type NewObjectError struct {
	Update Update
}

func (e *NewObjectError) Error() string {
	return fmt.Sprintf("eval: update %s addresses an object with no existing version (new-object creation is disabled)", e.Update)
}

const defaultMaxIterations = 1_000_000

// engine carries the mutable evaluation state.
type engine struct {
	prog    *term.Program
	base    *objectbase.Base
	m       *matcher
	plans   []plan
	opts    Options
	deepest map[term.OID]term.GVID
	trace   []TraceEvent
	fired   int
	// labels[ri] is rule ri's display label; agg[ri] its running stats.
	labels []string
	agg    []ruleAgg
}

// ruleAgg is the always-on per-rule accumulator behind Result.RuleStats.
type ruleAgg struct {
	stratum    int // 1-based; 0 until the rule's stratum runs
	fired      int
	emitted    int
	matched    int64
	iterations int
	time       time.Duration
}

// Run evaluates the update-program p on the object base ob: it stratifies
// p, iterates T_P stratum by stratum to the fixpoint, checks version-
// linearity online, and builds the updated object base. ob is not
// modified. Callers wanting safety diagnostics run package safety first;
// Run itself assumes nothing and surfaces unbound-variable errors lazily.
func Run(ob *objectbase.Base, p *term.Program, opts Options) (*Result, error) {
	sp := opts.Span
	evalStart := time.Now()
	stratifySpan := sp.StartChild("stratify")
	assignment, err := strata.Stratify(p)
	stratifySpan.End()
	if err != nil {
		return nil, err
	}
	stratifySpan.SetInt("strata", int64(len(assignment.Strata)))
	stratifyDur := time.Since(evalStart)
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = defaultMaxIterations
	}
	e := &engine{
		prog:    p,
		base:    ob.Clone(),
		opts:    opts,
		plans:   make([]plan, len(p.Rules)),
		deepest: make(map[term.OID]term.GVID),
		labels:  make([]string, len(p.Rules)),
		agg:     make([]ruleAgg, len(p.Rules)),
	}
	e.m = newMatcher(e.base)
	for i, r := range p.Rules {
		e.plans[i] = planRule(r)
		e.labels[i] = r.Label(i)
	}
	if err := e.initDeepest(); err != nil {
		return nil, err
	}

	res := &Result{Assignment: assignment}
	res.Stats.Stratify = stratifyDur
	for si, stratum := range assignment.Strata {
		stratumStart := time.Now()
		var stratumSpan *obs.Span
		if sp != nil {
			stratumSpan = sp.StartChild("stratum " + strconv.Itoa(si+1))
			stratumSpan.SetInt("rules", int64(len(stratum)))
		}
		iters, err := e.runStratum(si, stratum, stratumSpan)
		stratumSpan.SetInt("iterations", int64(iters))
		stratumSpan.End()
		if err != nil {
			return nil, err
		}
		res.Iterations = append(res.Iterations, iters)
		res.Stats.Strata = append(res.Stats.Strata, StratumTiming{
			Duration: time.Since(stratumStart), Iterations: iters,
		})
	}
	res.Result = e.base
	copyStart := time.Now()
	copySpan := sp.StartChild("copy")
	res.Final = Finalize(e.base)
	if copySpan != nil {
		copySpan.SetInt("objects", int64(len(res.Final.VersionsByObject())))
		copySpan.End()
	}
	res.Stats.Copy = time.Since(copyStart)
	res.Stats.Eval = time.Since(evalStart)
	res.Fired = e.fired
	res.RuleStats = e.ruleStats()
	// Candidate enumeration follows map order, so raw trace order within an
	// iteration is arbitrary; sort it into a canonical order so runs are
	// reproducible (parallel or not).
	sort.Slice(e.trace, func(i, j int) bool {
		a, b := e.trace[i], e.trace[j]
		if a.Stratum != b.Stratum {
			return a.Stratum < b.Stratum
		}
		if a.Iteration != b.Iteration {
			return a.Iteration < b.Iteration
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Update.compare(b.Update) < 0
	})
	res.Trace = e.trace
	return res, nil
}

// initDeepest seeds the per-object deepest-version map from the input base
// and verifies the input itself is version-linear.
func (e *engine) initDeepest() error {
	for o, versions := range e.base.VersionsByObject() {
		sort.Slice(versions, func(i, j int) bool {
			return versions[i].Path.Len() < versions[j].Path.Len()
		})
		deepest := term.GVID{Object: o}
		for _, v := range versions {
			if !v.Comparable(deepest) {
				return &LinearityError{Object: o, A: deepest, B: v}
			}
			if v.Path.Len() >= deepest.Path.Len() {
				deepest = v
			}
		}
		e.deepest[o] = deepest
	}
	return nil
}

// ruleStats snapshots the per-rule accumulators, hottest first (by match
// time, then fired count, then rule order).
func (e *engine) ruleStats() []RuleStat {
	out := make([]RuleStat, len(e.agg))
	for i, a := range e.agg {
		out[i] = RuleStat{
			Rule: e.labels[i], Stratum: a.stratum,
			Fired: a.fired, Emitted: a.emitted, Matched: int(a.matched),
			Iterations: a.iterations, TimeUS: a.time.Microseconds(),
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TimeUS != out[j].TimeUS {
			return out[i].TimeUS > out[j].TimeUS
		}
		return out[i].Fired > out[j].Fired
	})
	return out
}

// runStratum iterates T_P over the given rules until the fixpoint,
// recording iteration spans under stratumSpan when tracing.
func (e *engine) runStratum(si int, ruleIdx []int, stratumSpan *obs.Span) (int, error) {
	// Re-plan this stratum's rules against current statistics: version
	// populations change as lower strata run, so cardinalities measured
	// now reflect what the joins will actually scan.
	if !e.opts.StaticPlanner {
		est := statsCost(e.base)
		for _, ri := range ruleIdx {
			e.plans[ri] = planRuleCost(e.prog.Rules[ri], est)
		}
	}
	// fired accumulates T¹ across iterations; within a stratum it only
	// grows (see DESIGN.md on intra-stratum monotonicity). byTarget groups
	// the accumulated updates per target version; only targets with fresh
	// updates need their state recomputed in an iteration — everything a
	// state depends on (the copy source, the target's own update set) is
	// otherwise unchanged within the stratum.
	for _, ri := range ruleIdx {
		e.agg[ri].stratum = si + 1
	}
	fired := make(map[Update]int) // update -> rule index, for traces
	byTarget := make(map[term.GVID][]Update)
	var delta []term.Fact

	for iter := 1; ; iter++ {
		if iter > e.opts.MaxIterations {
			return iter, &IterationLimitError{Stratum: si, Limit: e.opts.MaxIterations}
		}
		dirty := make(map[term.GVID]bool)
		fresh := 0
		// freshByRule feeds the per-rule iteration spans; only kept when
		// tracing so the hot path stays map-free.
		var freshByRule map[int]int
		if stratumSpan != nil {
			freshByRule = make(map[int]int)
		}
		collect := func(ri int) func(Update) {
			return func(u Update) {
				if _, known := fired[u]; known {
					return
				}
				fired[u] = ri
				byTarget[u.Target()] = append(byTarget[u.Target()], u)
				dirty[u.Target()] = true
				fresh++
				e.fired++
				e.agg[ri].fired++
				if freshByRule != nil {
					freshByRule[ri]++
				}
				if e.opts.Trace {
					e.trace = append(e.trace, TraceEvent{
						Stratum: si, Iteration: iter,
						Rule:   e.labels[ri],
						Update: u,
					})
				}
			}
		}

		var tasks []fireTask
		lastRI := -1
		addTask := func(t fireTask) {
			tasks = append(tasks, t)
			if t.ri != lastRI {
				e.agg[t.ri].iterations++
				lastRI = t.ri
			}
		}
		if iter == 1 || e.opts.Strategy == Naive {
			for _, ri := range ruleIdx {
				addTask(fireTask{ri: ri, pos: -1})
			}
		} else {
			if len(delta) == 0 {
				return iter - 1, nil
			}
			for _, ri := range ruleIdx {
				for _, pos := range e.plans[ri].deltaPositions {
					addTask(fireTask{ri: ri, pos: pos})
				}
			}
		}

		var itSpan *obs.Span
		if stratumSpan != nil {
			itSpan = stratumSpan.StartChild("iteration " + strconv.Itoa(iter))
			itSpan.SetInt("delta_in", int64(len(delta)))
		}
		results, stats, err := e.collectFirings(si, tasks, delta)
		if err != nil {
			itSpan.End()
			return iter, err
		}
		for ti, ups := range results {
			sink := collect(tasks[ti].ri)
			for _, u := range ups {
				sink(u)
			}
			e.agg[tasks[ti].ri].emitted += len(ups)
			e.agg[tasks[ti].ri].matched += stats[ti].matched
			e.agg[tasks[ti].ri].time += stats[ti].dur
		}
		if itSpan != nil {
			e.addRuleSpans(itSpan, tasks, results, stats, freshByRule)
			itSpan.SetInt("fresh_updates", int64(fresh))
		}

		if fresh == 0 {
			itSpan.End()
			return iter, nil
		}
		changed, added, err := e.applyTargets(dirty, byTarget)
		if itSpan != nil {
			itSpan.SetInt("targets", int64(len(dirty)))
			itSpan.SetInt("facts_added", int64(len(added)))
			itSpan.End()
		}
		if err != nil {
			return iter, err
		}
		if !changed {
			return iter, nil
		}
		delta = added
	}
}

// addRuleSpans attaches one child span per rule evaluated in the
// iteration, aggregating its step-1 tasks (a rule can run several delta
// tasks): earliest start, summed duration, match/emit/fired counts.
func (e *engine) addRuleSpans(itSpan *obs.Span, tasks []fireTask, results [][]Update, stats []fireStat, freshByRule map[int]int) {
	type ruleIterAgg struct {
		start   time.Time
		dur     time.Duration
		matched int64
		emitted int
	}
	order := make([]int, 0, len(tasks))
	byRule := make(map[int]*ruleIterAgg)
	for ti, t := range tasks {
		a := byRule[t.ri]
		if a == nil {
			a = &ruleIterAgg{start: stats[ti].start}
			byRule[t.ri] = a
			order = append(order, t.ri)
		}
		if stats[ti].start.Before(a.start) {
			a.start = stats[ti].start
		}
		a.dur += stats[ti].dur
		a.matched += stats[ti].matched
		a.emitted += len(results[ti])
	}
	for _, ri := range order {
		a := byRule[ri]
		rs := itSpan.AddChild("rule "+e.labels[ri], a.start, a.dur)
		rs.SetInt("matched", a.matched)
		rs.SetInt("emitted", int64(a.emitted))
		rs.SetInt("fired", int64(freshByRule[ri]))
	}
}

// applyTargets performs steps 2 and 3 of T_P for the given dirty target
// versions, replacing each with the state computed from its full
// accumulated update set. It returns whether the base changed and which
// facts were added (for semi-naive deltas).
func (e *engine) applyTargets(dirty map[term.GVID]bool, byTarget map[term.GVID][]Update) (bool, []term.Fact, error) {
	targets := make([]term.GVID, 0, len(dirty))
	for w := range dirty {
		targets = append(targets, w)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Compare(targets[j]) < 0 })

	// Checks first (sequential, deterministic error reporting) ...
	for _, w := range targets {
		ups := byTarget[w]
		sort.Slice(ups, func(i, j int) bool { return ups[i].compare(ups[j]) < 0 })
		if e.opts.ForbidNewObjects && !e.base.Exists(w) {
			v := term.GVID{Object: w.Object, Path: w.Path[:w.Path.Len()-1]}
			if _, ok := e.base.VStar(v); !ok {
				return false, nil, &NewObjectError{Update: ups[0]}
			}
		}
		// Version-linearity, checked online as Section 5 suggests.
		d, ok := e.deepest[w.Object]
		if !ok {
			d = term.GVID{Object: w.Object}
		}
		if !w.Comparable(d) {
			return false, nil, &LinearityError{Object: w.Object, A: d, B: w}
		}
		if w.Path.Len() > d.Path.Len() {
			e.deepest[w.Object] = w
		}
	}

	// ... then state computation (read-only, parallelizable) ...
	states := e.computeStates(targets, byTarget)

	// ... then mutation, sequentially.
	changed := false
	var added []term.Fact
	for i, w := range targets {
		oldSt := e.base.StateOf(w)
		newSt := states[i]
		if !e.base.SetState(w, newSt) {
			continue
		}
		changed = true
		newSt.ForEach(func(k term.MethodKey, r term.OID) {
			if oldSt == nil || !oldSt.Has(k, r) {
				added = append(added, term.Fact{V: w, Method: k.Method, Args: k.Args, Result: r})
			}
		})
	}
	return changed, added, nil
}

// Finalize builds the updated object base ob' of Section 5 from a fixpoint
// base: for every object, the method applications of its final (deepest)
// version are copied under the plain OID. Objects whose final state holds
// nothing but exists vanish.
func Finalize(result *objectbase.Base) *objectbase.Base {
	out := objectbase.New()
	for o, versions := range result.VersionsByObject() {
		final := term.GVID{Object: o}
		found := false
		for _, v := range versions {
			if !found || v.Path.Len() > final.Path.Len() {
				final, found = v, true
			}
		}
		if !found {
			continue
		}
		st := result.StateOf(final)
		if st == nil || st.OnlyExists() {
			continue
		}
		target := term.GVID{Object: o}
		st.ForEach(func(k term.MethodKey, r term.OID) {
			if k.Method == term.ExistsMethod {
				return
			}
			out.Insert(term.Fact{V: target, Method: k.Method, Args: k.Args, Result: r})
		})
		out.EnsureObject(o)
	}
	return out
}
