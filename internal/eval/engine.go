package eval

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"time"

	"verlog/internal/objectbase"
	"verlog/internal/obs"
	"verlog/internal/strata"
	"verlog/internal/term"
)

// Strategy selects the fixpoint iteration scheme within a stratum.
type Strategy uint8

const (
	// SemiNaive re-derives, after the first iteration of a stratum, only
	// rule firings supported by at least one fact added in the previous
	// iteration. It is the default.
	SemiNaive Strategy = iota
	// Naive re-enumerates every rule against the full base each iteration.
	Naive
)

func (s Strategy) String() string {
	if s == Naive {
		return "naive"
	}
	return "semi-naive"
}

// Options configures a run.
type Options struct {
	// Strategy selects naive or semi-naive iteration (default SemiNaive).
	Strategy Strategy
	// MaxIterations bounds the iterations per stratum; 0 means the default
	// of 1_000_000. Safe stratified programs terminate on their own; the
	// bound catches engine bugs and deliberately unsafe experiments.
	MaxIterations int
	// Trace records every fired update with its rule, stratum, iteration.
	Trace bool
	// ForbidNewObjects rejects inserts on objects unknown to the base
	// (creating fresh objects is an extension beyond the paper).
	ForbidNewObjects bool
	// Parallelism sets the worker count for rule matching and state
	// computation within an iteration (both read-only over the base).
	// Values below 2 evaluate sequentially. The computed fixpoint is
	// identical; only wall-clock time changes.
	Parallelism int
	// StaticPlanner disables statistics-based join ordering: bodies are
	// evaluated with the source-order planner instead of ordering
	// generators by index cardinality. The fixpoint is identical; this
	// exists for the planner ablation experiment.
	StaticPlanner bool
	// Interpreted forces the map-substitution interpreter (match.go)
	// instead of compiled match plans. The fixpoint is identical; the
	// metamorphic suite diffs the two paths, and the flag doubles as an
	// escape hatch.
	Interpreted bool
	// Plans supplies pre-compiled match plans (see Compile). They are used
	// when they match the program and planner mode, skipping compilation;
	// the repository caches one per published head and rule-set hash.
	Plans *CompiledProgram
	// Span, when non-nil, collects the evaluation as a span tree under it
	// (see internal/obs): stratify → stratum[i] → iteration[j] → rule[k],
	// with delta sizes, firing counts and wall time per node, and
	// runtime/pprof labels (stratum, rule) set around rule matching so CPU
	// profiles attribute to rules. Nil (the default) skips all of it.
	Span *obs.Span
}

// TraceEvent records one fired update during evaluation.
type TraceEvent struct {
	Stratum   int
	Iteration int
	Rule      string
	Update    Update
}

func (t TraceEvent) String() string {
	return fmt.Sprintf("[stratum %d, iteration %d] %s fires %s", t.Stratum+1, t.Iteration, t.Rule, t.Update)
}

// RuleStat aggregates one rule's activity across a run. The stats are
// always collected (a handful of integer adds per iteration); Span-level
// tracing is not required.
type RuleStat struct {
	// Rule is the rule's label (name or r<index>).
	Rule string `json:"rule"`
	// Stratum is the 1-based stratum the rule was assigned to.
	Stratum int `json:"stratum"`
	// Fired counts the distinct ground updates first derived by this rule
	// (each update is attributed to the rule that fired it first, so the
	// per-rule Fired values sum to Result.Fired).
	Fired int `json:"fired"`
	// Emitted counts every update the rule emitted, including duplicates
	// of already-fired updates in later iterations.
	Emitted int `json:"emitted"`
	// Matched counts complete body matches (head truth test not yet
	// applied) — the raw join work the rule caused.
	Matched int `json:"matched"`
	// Iterations is how many T_P iterations evaluated the rule.
	Iterations int `json:"iterations"`
	// TimeUS is the wall-clock microseconds spent matching the rule,
	// summed over its step-1 tasks (under parallelism, task times overlap).
	TimeUS int64 `json:"time_us"`
}

// StratumTiming is the cost of one stratum's fixpoint.
type StratumTiming struct {
	// Duration is the wall-clock time the stratum's T_P iteration took.
	Duration time.Duration
	// Iterations is how many T_P applications it needed.
	Iterations int
}

// Stats carries per-stage timings across the layers of one apply. eval.Run
// fills Stratify, Strata, Copy and Eval; core.Apply adds Safety; the
// repository adds ConstraintCheck and Commit; the server adds Parse. The
// stage names follow the paper's pipeline: parse, safety, stratification,
// per-stratum T_P fixpoints, the copy phase building ob' (Finalize), and
// the apply phase committing the result.
type Stats struct {
	// Parse is the time spent parsing the program text (callers that start
	// from a parsed program leave it zero).
	Parse time.Duration
	// Safety is the safety check over every rule.
	Safety time.Duration
	// Stratify is the stratification of the program.
	Stratify time.Duration
	// Strata is the per-stratum fixpoint cost, in stratum order.
	Strata []StratumTiming
	// Copy is the copy phase: building the updated object base ob' from the
	// fixpoint (Finalize).
	Copy time.Duration
	// Eval is the total time inside eval.Run (stratify through copy).
	Eval time.Duration
	// ConstraintCheck is the integrity-constraint verification of the
	// updated base (repository layer).
	ConstraintCheck time.Duration
	// Commit is the apply phase: diff computation, journal append (with
	// fsync) and head replacement (repository layer).
	Commit time.Duration
}

// Result is the outcome of running an update-program.
type Result struct {
	// Result is result(P): the fixpoint object base holding every version
	// derived during evaluation.
	Result *objectbase.Base
	// Final is the updated object base ob' of Section 5, built from each
	// object's final version.
	Final *objectbase.Base
	// Assignment is the stratification used.
	Assignment *strata.Assignment
	// Iterations records how many T_P applications each stratum took.
	Iterations []int
	// Fired is the total number of distinct ground updates fired.
	Fired int
	// Trace holds fired-update events when Options.Trace was set.
	Trace []TraceEvent
	// RuleStats aggregates per-rule firing counts, match work and wall
	// time, hottest (most time) first. Always filled.
	RuleStats []RuleStat
	// Plan records how bodies were evaluated: "cached" (supplied compiled
	// plans reused), "compiled" (plans built this run) or "interpreted"
	// (match.go, forced or fallback).
	Plan string
	// Plans holds the compiled plans the run used (nil when interpreted),
	// so callers can cache them for the next apply against the same head.
	Plans *CompiledProgram
	// Stats holds per-stage timings for this run; layers above eval add
	// their own stages (see Stats).
	Stats Stats
}

// LinearityError reports a violation of version-linearity (Section 5): two
// versions of the same object that are not subterm-comparable.
type LinearityError struct {
	Object term.OID
	A, B   term.GVID
}

func (e *LinearityError) Error() string {
	return fmt.Sprintf("eval: result is not version-linear: versions %s and %s of object %s are not subterm-comparable", e.A, e.B, e.Object)
}

// IterationLimitError reports that a stratum did not reach its fixpoint
// within Options.MaxIterations.
type IterationLimitError struct {
	Stratum int
	Limit   int
}

func (e *IterationLimitError) Error() string {
	return fmt.Sprintf("eval: stratum %d did not reach a fixpoint within %d iterations", e.Stratum+1, e.Limit)
}

// NewObjectError reports an insert on an object unknown to the base when
// Options.ForbidNewObjects is set.
type NewObjectError struct {
	Update Update
}

func (e *NewObjectError) Error() string {
	return fmt.Sprintf("eval: update %s addresses an object with no existing version (new-object creation is disabled)", e.Update)
}

const defaultMaxIterations = 1_000_000

// dedupSpill is the per-target list length past which fired-update
// deduplication switches from linear scan to the spill map (see
// runStratum).
const dedupSpill = 16

// engine carries the mutable evaluation state.
type engine struct {
	prog    *term.Program
	base    *objectbase.Base
	m       *matcher
	plans   []plan
	opts    Options
	deepest map[term.OID]term.GVID
	trace   []TraceEvent
	fired   int
	// labels[ri] is rule ri's display label; agg[ri] its running stats.
	labels []string
	agg    []ruleAgg
	// Compiled-plan state: compiled is nil on the interpreted path. x is
	// the sequential executor; parallel workers build their own. idx is
	// the input base's literal index (exact for path-0 literals for the
	// whole run), and buckets holds the current iteration's delta facts
	// grouped by (path, method) for the delta-seeded plan variants.
	compiled *CompiledProgram
	x        *executor
	idx      *objectbase.LiteralIndex
	buckets  map[pmKey][]term.Fact
	// arena backs the states cloned by the sequential copy phases (target
	// computation and finalize); parallel workers carve from their own.
	arena objectbase.StateArena
	// p0 is the frozen parent when base is a COW overlay, nil otherwise.
	// Heads always push paths, so path-0 versions are never shadowed by the
	// overlay's own layer; reads of them can go straight to the parent and
	// skip the guaranteed own-layer miss.
	p0 *objectbase.Base
}

// readBase returns the base to read version g from (see engine.p0).
func (e *engine) readBase(g term.GVID) *objectbase.Base {
	if e.p0 != nil && g.Path.Len() == 0 {
		return e.p0
	}
	return e.base
}

// targetUpdates accumulates one target version's deduplicated updates over
// a stratum. mark is the last iteration that appended to ups; runStratum
// uses it to build the per-iteration dirty list without a second map.
// ups starts as a view of ups0 (capacity-clamped, so growth reallocates):
// the overwhelming majority of targets receive exactly one update, and the
// inline slot spares them a heap allocation. Instances come from
// per-iteration slabs, so a 10k-target iteration costs one allocation, not
// 10k.
type targetUpdates struct {
	w    term.GVID
	ups  []Update
	mark int
	ups0 [1]Update
}

// ruleAgg is the always-on per-rule accumulator behind Result.RuleStats.
type ruleAgg struct {
	stratum    int // 1-based; 0 until the rule's stratum runs
	fired      int
	emitted    int
	matched    int64
	iterations int
	time       time.Duration
}

// Run evaluates the update-program p on the object base ob: it stratifies
// p, iterates T_P stratum by stratum to the fixpoint, checks version-
// linearity online, and builds the updated object base. ob is not
// modified. Callers wanting safety diagnostics run package safety first;
// Run itself assumes nothing and surfaces unbound-variable errors lazily.
func Run(ob *objectbase.Base, p *term.Program, opts Options) (*Result, error) {
	sp := opts.Span
	evalStart := time.Now()
	stratifySpan := sp.StartChild("stratify")
	assignment, err := strata.Stratify(p)
	stratifySpan.End()
	if err != nil {
		return nil, err
	}
	stratifySpan.SetInt("strata", int64(len(assignment.Strata)))
	stratifyDur := time.Since(evalStart)
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = defaultMaxIterations
	}
	// A frozen input evaluates over a copy-on-write overlay: path-0 facts
	// are read through to the shared parent, and only derived versions
	// materialize in the overlay's own layer. Mutable inputs are cloned as
	// before (an overlay over a mutating parent would be unsound).
	var base *objectbase.Base
	if ob.Frozen() {
		base = objectbase.Overlay(ob)
	} else {
		base = ob.Clone()
		// Parallel matchers scan the clone concurrently between mutation
		// phases; materialize its deferred VID index while still private.
		base.EnsureVIDIndex()
	}
	e := &engine{
		prog:    p,
		base:    base,
		opts:    opts,
		plans:   make([]plan, len(p.Rules)),
		deepest: make(map[term.OID]term.GVID, ob.VersionCount()),
		labels:  make([]string, len(p.Rules)),
		agg:     make([]ruleAgg, len(p.Rules)),
	}
	e.p0 = base.Parent()
	e.m = newMatcher(e.base)
	for i, r := range p.Rules {
		e.plans[i] = planRule(r)
		e.labels[i] = r.Label(i)
	}
	planAttr := "interpreted"
	if !opts.Interpreted {
		if opts.Plans.Matches(p, opts.StaticPlanner) {
			e.compiled = opts.Plans
			planAttr = "cached"
		} else if cp, cerr := Compile(ob, p, opts.StaticPlanner); cerr == nil {
			e.compiled = cp
			planAttr = "compiled"
		}
		// On a compile error the whole program runs interpreted: mixing the
		// two paths within one fixpoint would complicate the delta plumbing
		// for no gain, and compile errors are rare shapes.
	}
	if e.compiled != nil {
		e.idx = ob.Index()
		e.x = newExecutor(e.base, e.idx)
	}
	sp.SetAttr("plan", planAttr)
	if err := e.initDeepest(); err != nil {
		return nil, err
	}

	res := &Result{Assignment: assignment, Plan: planAttr, Plans: e.compiled}
	res.Stats.Stratify = stratifyDur
	for si, stratum := range assignment.Strata {
		stratumStart := time.Now()
		var stratumSpan *obs.Span
		if sp != nil {
			stratumSpan = sp.StartChild("stratum " + strconv.Itoa(si+1))
			stratumSpan.SetInt("rules", int64(len(stratum)))
		}
		iters, err := e.runStratum(si, stratum, stratumSpan)
		stratumSpan.SetInt("iterations", int64(iters))
		stratumSpan.End()
		if err != nil {
			return nil, err
		}
		res.Iterations = append(res.Iterations, iters)
		res.Stats.Strata = append(res.Stats.Strata, StratumTiming{
			Duration: time.Since(stratumStart), Iterations: iters,
		})
	}
	res.Result = e.base
	copyStart := time.Now()
	copySpan := sp.StartChild("copy")
	res.Final = e.finalize()
	if copySpan != nil {
		copySpan.SetInt("objects", int64(len(res.Final.VersionsByObject())))
		copySpan.End()
	}
	res.Stats.Copy = time.Since(copyStart)
	res.Stats.Eval = time.Since(evalStart)
	res.Fired = e.fired
	res.RuleStats = e.ruleStats()
	// Candidate enumeration follows map order, so raw trace order within an
	// iteration is arbitrary; sort it into a canonical order so runs are
	// reproducible (parallel or not).
	sort.Slice(e.trace, func(i, j int) bool {
		a, b := e.trace[i], e.trace[j]
		if a.Stratum != b.Stratum {
			return a.Stratum < b.Stratum
		}
		if a.Iteration != b.Iteration {
			return a.Iteration < b.Iteration
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Update.compare(b.Update) < 0
	})
	res.Trace = e.trace
	return res, nil
}

// initDeepest seeds the per-object deepest-version map from the input base
// and verifies the input itself is version-linear. A single unsorted pass
// suffices: while no violation has been seen, every version of an object is
// a prefix of the running deepest (or extends it), so any version
// incomparable with some earlier one is also incomparable with the running
// deepest and is caught when it arrives.
func (e *engine) initDeepest() error {
	var lerr *LinearityError
	e.base.ForEachVID(func(v term.GVID) {
		if lerr != nil {
			return
		}
		d, ok := e.deepest[v.Object]
		if !ok {
			e.deepest[v.Object] = v
			return
		}
		if !v.Comparable(d) {
			lerr = &LinearityError{Object: v.Object, A: d, B: v}
			return
		}
		if v.Path.Len() > d.Path.Len() {
			e.deepest[v.Object] = v
		}
	})
	if lerr != nil {
		return lerr
	}
	return nil
}

// ruleStats snapshots the per-rule accumulators, hottest first (by match
// time, then fired count, then rule order).
func (e *engine) ruleStats() []RuleStat {
	out := make([]RuleStat, len(e.agg))
	for i, a := range e.agg {
		out[i] = RuleStat{
			Rule: e.labels[i], Stratum: a.stratum,
			Fired: a.fired, Emitted: a.emitted, Matched: int(a.matched),
			Iterations: a.iterations, TimeUS: a.time.Microseconds(),
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TimeUS != out[j].TimeUS {
			return out[i].TimeUS > out[j].TimeUS
		}
		return out[i].Fired > out[j].Fired
	})
	return out
}

// runStratum iterates T_P over the given rules until the fixpoint,
// recording iteration spans under stratumSpan when tracing.
func (e *engine) runStratum(si int, ruleIdx []int, stratumSpan *obs.Span) (int, error) {
	// Re-plan this stratum's rules against current statistics: version
	// populations change as lower strata run, so cardinalities measured
	// now reflect what the joins will actually scan. Compiled plans are
	// built once against the input base (with index selectivity folded
	// in); only the interpreted path re-plans per stratum.
	if e.compiled == nil && !e.opts.StaticPlanner {
		est := statsCost(e.base)
		for _, ri := range ruleIdx {
			e.plans[ri] = planRuleCost(e.prog.Rules[ri], est)
		}
	}
	// fired accumulates T¹ across iterations; within a stratum it only
	// grows (see DESIGN.md on intra-stratum monotonicity). byTarget groups
	// the accumulated updates per target version; only targets with fresh
	// updates need their state recomputed in an iteration — everything a
	// state depends on (the copy source, the target's own update set) is
	// otherwise unchanged within the stratum.
	for _, ri := range ruleIdx {
		e.agg[ri].stratum = si + 1
	}
	// wantDelta: semi-naive iteration only pays for delta collection when
	// some rule in the stratum can actually consume a delta. Strata whose
	// rules have no delta-seedable literal (every body literal reads facts
	// frozen in-stratum) reach their fixpoint after one changing iteration,
	// so added-fact collection and bucketing are skipped entirely.
	wantDelta := false
	if e.opts.Strategy != Naive {
		for _, ri := range ruleIdx {
			if e.compiled != nil {
				if len(e.compiled.rules[ri].deltaKeys) > 0 {
					wantDelta = true
					break
				}
			} else if len(e.plans[ri].deltaPositions) > 0 {
				wantDelta = true
				break
			}
		}
	}
	// byTarget doubles as the fired set: an update is known iff it is
	// already in its target's list. Small lists (the overwhelming majority)
	// dedup by linear scan; once a target's list passes dedupSpill its
	// updates move to the spill map, so accumulator targets (recursive
	// closures collecting thousands of inserts on one version) keep O(1)
	// membership checks. This avoids hashing every emitted update — the
	// Update struct is large and hash-dominated — on the common path.
	// byTarget is sized lazily from the first iteration's emitted updates;
	// the bulk of a stratum's updates arrive in iteration 1, and presizing
	// avoids the incremental rehash-and-split cost on large runs.
	var byTarget map[term.GVID]*targetUpdates
	var spill map[Update]struct{}
	var delta []term.Fact

	for iter := 1; ; iter++ {
		if iter > e.opts.MaxIterations {
			return iter, &IterationLimitError{Stratum: si, Limit: e.opts.MaxIterations}
		}
		var dirty []*targetUpdates
		var tuSlab []targetUpdates
		fresh := 0
		// freshByRule feeds the per-rule iteration spans; only kept when
		// tracing so the hot path stays map-free.
		var freshByRule map[int]int
		if stratumSpan != nil {
			freshByRule = make(map[int]int)
		}
		collect := func(ri int) func(Update) {
			return func(u Update) {
				w := u.Target()
				tu := byTarget[w]
				if tu == nil {
					// Pointers into tuSlab stay valid: the slab never grows
					// past its capacity (one new target per fresh update at
					// most), and superseded slabs are kept alive by the
					// byTarget entries pointing into them.
					if len(tuSlab) < cap(tuSlab) {
						tuSlab = tuSlab[:len(tuSlab)+1]
						tu = &tuSlab[len(tuSlab)-1]
					} else {
						tu = &targetUpdates{}
					}
					tu.w = w
					tu.ups = tu.ups0[:0:1]
					byTarget[w] = tu
				}
				list := tu.ups
				if len(list) <= dedupSpill {
					for i := range list {
						if list[i] == u {
							return
						}
					}
					if len(list) == dedupSpill {
						if spill == nil {
							spill = make(map[Update]struct{}, 4*dedupSpill)
						}
						for i := range list {
							spill[list[i]] = struct{}{}
						}
						spill[u] = struct{}{}
					}
				} else {
					if _, known := spill[u]; known {
						return
					}
					spill[u] = struct{}{}
				}
				tu.ups = append(list, u)
				if tu.mark != iter {
					tu.mark = iter
					dirty = append(dirty, tu)
				}
				fresh++
				e.fired++
				e.agg[ri].fired++
				if freshByRule != nil {
					freshByRule[ri]++
				}
				if e.opts.Trace {
					e.trace = append(e.trace, TraceEvent{
						Stratum: si, Iteration: iter,
						Rule:   e.labels[ri],
						Update: u,
					})
				}
			}
		}

		var tasks []fireTask
		lastRI := -1
		addTask := func(t fireTask) {
			tasks = append(tasks, t)
			if t.ri != lastRI {
				e.agg[t.ri].iterations++
				lastRI = t.ri
			}
		}
		if iter == 1 || e.opts.Strategy == Naive {
			for _, ri := range ruleIdx {
				addTask(fireTask{ri: ri, pos: -1})
			}
		} else {
			if len(delta) == 0 {
				return iter - 1, nil
			}
			if e.compiled != nil {
				// One task per delta plan variant whose (path, method)
				// bucket received facts; pos indexes the variant.
				for _, ri := range ruleIdx {
					cr := e.compiled.rules[ri]
					for vi, key := range cr.deltaKeys {
						if len(e.buckets[key]) > 0 {
							addTask(fireTask{ri: ri, pos: vi})
						}
					}
				}
			} else {
				for _, ri := range ruleIdx {
					for _, pos := range e.plans[ri].deltaPositions {
						addTask(fireTask{ri: ri, pos: pos})
					}
				}
			}
		}

		var itSpan *obs.Span
		if stratumSpan != nil {
			itSpan = stratumSpan.StartChild("iteration " + strconv.Itoa(iter))
			itSpan.SetInt("delta_in", int64(len(delta)))
		}
		// Sequential, untraced runs sink fired updates straight into collect,
		// skipping the per-task result buffers and the merge pass; parallel
		// and traced runs buffer per task so merge order (and span
		// accounting) stays deterministic. The accumulators are presized
		// from the planner's row estimates in direct mode and from the exact
		// emitted count in buffered mode; a low estimate only costs append
		// growth (collect never grows tuSlab past capacity — overflow
		// targets allocate individually).
		var results [][]Update
		var stats []fireStat
		var err error
		if e.opts.Parallelism < 2 && stratumSpan == nil {
			est := 0
			if e.compiled != nil {
				for _, t := range tasks {
					cr := e.compiled.rules[t.ri]
					if t.pos >= 0 {
						est += len(e.buckets[cr.deltaKeys[t.pos]])
						continue
					}
					for si := range cr.steps {
						if r := cr.steps[si].estRows; r > 0 {
							est += r
							break
						}
					}
				}
				if est > 1<<17 {
					est = 1 << 17
				}
			}
			dirty = make([]*targetUpdates, 0, est)
			tuSlab = make([]targetUpdates, 0, est)
			if byTarget == nil {
				byTarget = make(map[term.GVID]*targetUpdates, est)
			}
			_, stats, err = e.collectFirings(si, tasks, delta, func(ti int) func(Update) {
				ri := tasks[ti].ri
				inner := collect(ri)
				return func(u Update) {
					e.agg[ri].emitted++
					inner(u)
				}
			})
		} else {
			results, stats, err = e.collectFirings(si, tasks, delta, nil)
		}
		if err != nil {
			itSpan.End()
			return iter, err
		}
		if results != nil {
			total := 0
			for _, ups := range results {
				total += len(ups)
			}
			dirty = make([]*targetUpdates, 0, total)
			tuSlab = make([]targetUpdates, 0, total)
			if byTarget == nil {
				byTarget = make(map[term.GVID]*targetUpdates, total)
			}
			for ti, ups := range results {
				sink := collect(tasks[ti].ri)
				for _, u := range ups {
					sink(u)
				}
				e.agg[tasks[ti].ri].emitted += len(ups)
			}
		}
		for ti := range tasks {
			e.agg[tasks[ti].ri].matched += stats[ti].matched
			e.agg[tasks[ti].ri].time += stats[ti].dur
		}
		if itSpan != nil {
			e.addRuleSpans(itSpan, tasks, results, stats, freshByRule)
			itSpan.SetInt("fresh_updates", int64(fresh))
		}

		if fresh == 0 {
			itSpan.End()
			return iter, nil
		}
		changed, added, err := e.applyTargets(dirty, wantDelta)
		if itSpan != nil {
			itSpan.SetInt("targets", int64(len(dirty)))
			itSpan.SetInt("facts_added", int64(len(added)))
			itSpan.End()
		}
		if err != nil {
			return iter, err
		}
		if !changed {
			return iter, nil
		}
		if !wantDelta && e.opts.Strategy != Naive {
			// No rule here can fire from in-stratum additions, so a changing
			// iteration is already the fixpoint.
			return iter, nil
		}
		delta = added
		if e.compiled != nil {
			e.buckets = bucketDelta(added)
		}
	}
}

// bucketDelta groups an iteration's added facts by (path, method), the
// granularity compiled delta variants join at.
func bucketDelta(facts []term.Fact) map[pmKey][]term.Fact {
	out := make(map[pmKey][]term.Fact, 8)
	for _, f := range facts {
		k := pmKey{Path: f.V.Path, Method: f.Method}
		out[k] = append(out[k], f)
	}
	return out
}

// addRuleSpans attaches one child span per rule evaluated in the
// iteration, aggregating its step-1 tasks (a rule can run several delta
// tasks): earliest start, summed duration, match/emit/fired counts.
func (e *engine) addRuleSpans(itSpan *obs.Span, tasks []fireTask, results [][]Update, stats []fireStat, freshByRule map[int]int) {
	type ruleIterAgg struct {
		start   time.Time
		dur     time.Duration
		matched int64
		emitted int
	}
	order := make([]int, 0, len(tasks))
	byRule := make(map[int]*ruleIterAgg)
	for ti, t := range tasks {
		a := byRule[t.ri]
		if a == nil {
			a = &ruleIterAgg{start: stats[ti].start}
			byRule[t.ri] = a
			order = append(order, t.ri)
		}
		if stats[ti].start.Before(a.start) {
			a.start = stats[ti].start
		}
		a.dur += stats[ti].dur
		a.matched += stats[ti].matched
		a.emitted += len(results[ti])
	}
	for _, ri := range order {
		a := byRule[ri]
		rs := itSpan.AddChild("rule "+e.labels[ri], a.start, a.dur)
		rs.SetInt("matched", a.matched)
		rs.SetInt("emitted", int64(a.emitted))
		rs.SetInt("fired", int64(freshByRule[ri]))
	}
}

// applyTargets performs steps 2 and 3 of T_P for the given dirty target
// versions, replacing each with the state computed from its full
// accumulated update set. It returns whether the base changed and, when
// collectAdded is set, which facts were added (for semi-naive deltas).
func (e *engine) applyTargets(dirty []*targetUpdates, collectAdded bool) (bool, []term.Fact, error) {
	slices.SortFunc(dirty, func(a, b *targetUpdates) int { return a.w.Compare(b.w) })

	// Checks first (sequential, deterministic error reporting) ...
	for _, tu := range dirty {
		w := tu.w
		if len(tu.ups) > 1 {
			ups := tu.ups
			slices.SortFunc(ups, func(a, b Update) int { return a.compare(b) })
		}
		if e.opts.ForbidNewObjects && !e.base.Exists(w) {
			v := term.GVID{Object: w.Object, Path: w.Path[:w.Path.Len()-1]}
			if _, ok := e.base.VStar(v); !ok {
				return false, nil, &NewObjectError{Update: tu.ups[0]}
			}
		}
		// Version-linearity, checked online as Section 5 suggests.
		d, ok := e.deepest[w.Object]
		if !ok {
			d = term.GVID{Object: w.Object}
		}
		if !w.Comparable(d) {
			return false, nil, &LinearityError{Object: w.Object, A: d, B: w}
		}
		if w.Path.Len() > d.Path.Len() {
			e.deepest[w.Object] = w
		}
	}

	// ... then state computation (read-only, parallelizable) ...
	states := e.computeStates(dirty)

	// ... then mutation, sequentially.
	e.base.GrowStates(len(dirty))
	changed := false
	var added []term.Fact
	for i, tu := range dirty {
		w := tu.w
		oldSt := e.base.StateOf(w)
		newSt := states[i]
		if oldSt == nil && newSt != nil && !newSt.Empty() {
			// The common case — a version derived for the first time this
			// iteration — skips SetState's redundant lookup/equality work.
			e.base.SetStateFresh(w, newSt)
		} else if !e.base.SetState(w, newSt) {
			continue
		}
		changed = true
		if !collectAdded {
			continue
		}
		newSt.ForEach(func(k term.MethodKey, r term.OID) {
			if oldSt == nil || !oldSt.Has(k, r) {
				added = append(added, term.Fact{V: w, Method: k.Method, Args: k.Args, Result: r})
			}
		})
	}
	return changed, added, nil
}

// finalize is Finalize specialized to a completed run: e.deepest already
// maps every object in the result base to its deepest version (seeded by
// initDeepest, maintained online by applyTargets), so the copy phase skips
// the full version enumeration. Derived versions are never empty — the
// exists method is forbidden in rule heads, so every state keeps at least
// its exists facts — hence every deepest version is present in the base.
func (e *engine) finalize() *objectbase.Base {
	out := objectbase.NewSized(len(e.deepest))
	// The updated base is handed to the caller for constraint checks, diffs
	// and publication; none of those scan by (path, method), so the VID
	// index is deferred to first use (Freeze builds it if nothing else did).
	out.DeferVIDIndex()
	for o, final := range e.deepest {
		st := e.base.StateOf(final)
		if st == nil || st.OnlyExists() {
			continue
		}
		copyFinalState(out, o, st, &e.arena)
	}
	return out
}

// copyFinalState installs the non-exists applications of a final version's
// state under the plain OID — as one bulk-cloned state, not per-fact
// Inserts, so there is no per-application re-hashing and the path/method
// registration runs once per state. The canonical exists application is
// re-added to the clone directly (equivalent to EnsureObject, without the
// extra per-object base lookup).
func copyFinalState(out *objectbase.Base, o term.OID, st *objectbase.State, a *objectbase.StateArena) {
	ns := a.CloneFinal(st, o)
	// out is freshly built with one state per object, so every install is
	// fresh by construction.
	out.SetStateFresh(term.GVID{Object: o}, ns)
}

// Finalize builds the updated object base ob' of Section 5 from a fixpoint
// base: for every object, the method applications of its final (deepest)
// version are copied under the plain OID. Objects whose final state holds
// nothing but exists vanish.
func Finalize(result *objectbase.Base) *objectbase.Base {
	out := objectbase.New()
	out.DeferVIDIndex()
	var arena objectbase.StateArena
	for o, versions := range result.VersionsByObject() {
		final := term.GVID{Object: o}
		found := false
		for _, v := range versions {
			if !found || v.Path.Len() > final.Path.Len() {
				final, found = v, true
			}
		}
		if !found {
			continue
		}
		st := result.StateOf(final)
		if st == nil || st.OnlyExists() {
			continue
		}
		copyFinalState(out, o, st, &arena)
	}
	return out
}
