package eval

import (
	"testing"

	"verlog/internal/parser"
	"verlog/internal/term"
)

func planOf(t *testing.T, ruleSrc string) (term.Rule, plan) {
	t.Helper()
	p, err := parser.Program(ruleSrc, "plan.vlg")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r := p.Rules[0]
	return r, planRule(r)
}

// TestPlanNegationAfterBinder: a negated literal written first must still
// be evaluated after the positive literal that binds its variables.
func TestPlanNegationAfterBinder(t *testing.T) {
	r, pl := planOf(t, `r: ins[X].m -> a <- !X.skip -> yes, X.t -> 1.`)
	// Order must put body[1] (the binder) before body[0] (the negation).
	pos := map[int]int{}
	for where, li := range pl.order {
		pos[li] = where
	}
	if pos[1] > pos[0] {
		t.Errorf("negation evaluated before its binder: order %v for %s", pl.order, r)
	}
}

// TestPlanComparisonAfterBinding: S > 4500 runs after S is bound.
func TestPlanComparisonAfterBinding(t *testing.T) {
	_, pl := planOf(t, `r: ins[X].f -> y <- S > 4500, X.sal -> S.`)
	pos := map[int]int{}
	for where, li := range pl.order {
		pos[li] = where
	}
	if pos[1] > pos[0] {
		t.Errorf("comparison before binder: %v", pl.order)
	}
}

// TestPlanEqualityChain: equalities ordered by data flow: A bound by atom,
// then B = A + 1, then C = B * 2.
func TestPlanEqualityChain(t *testing.T) {
	_, pl := planOf(t, `r: ins[X].m -> C <- C = B * 2, B = A + 1, X.t -> A.`)
	pos := map[int]int{}
	for where, li := range pl.order {
		pos[li] = where
	}
	if !(pos[2] < pos[1] && pos[1] < pos[0]) {
		t.Errorf("equality chain misordered: %v", pl.order)
	}
}

// TestPlanBehavioral: the planner's ordering choices do not change results
// — the same rule in different literal orders computes the same updates.
func TestPlanBehavioral(t *testing.T) {
	base := `
x.t -> 1. x.skip -> yes.
y.t -> 1.
`
	variants := []string{
		`r: ins[X].m -> a <- X.t -> 1, !X.skip -> yes.`,
		`r: ins[X].m -> a <- !X.skip -> yes, X.t -> 1.`,
	}
	for _, src := range variants {
		res := mustRun(t, mustBase(t, base), mustProgram(t, src), Options{})
		wantFact(t, res.Final, `y.m -> a.`)
		wantNoFact(t, res.Final, `x.m -> a.`)
	}
}

// TestPlanDeltaPositions: only version-terms over versions and positive
// ins-update-terms are delta-seedable.
func TestPlanDeltaPositions(t *testing.T) {
	_, pl := planOf(t, `
r: ins[X].m -> a <- X.t -> 1, ins(X).k -> b, ins[X].m2 -> c, mod[X].s -> (A, B), !ins(X).z -> q.`)
	// Body literals: 0: X.t->1 (plain object, not seedable)
	//                1: ins(X).k->b (seedable)
	//                2: ins[X].m2->c (seedable)
	//                3: mod[X].s->(A,B) (frozen in-stratum, not seedable)
	//                4: !ins(X).z->q (negated, not seedable)
	seedable := map[int]bool{}
	for _, pos := range pl.deltaPositions {
		seedable[pl.order[pos]] = true
	}
	want := map[int]bool{1: true, 2: true}
	for li := 0; li < 5; li++ {
		if seedable[li] != want[li] {
			t.Errorf("literal %d seedable = %v, want %v (plan %v, deltas %v)",
				li, seedable[li], want[li], pl.order, pl.deltaPositions)
		}
	}
}

// TestStatsPlannerOrdersBySelectivity: with statistics, the most selective
// generator (fewest indexed candidates) runs first.
func TestStatsPlannerOrdersBySelectivity(t *testing.T) {
	ob := mustBase(t, `
a.isa -> item / val -> 1.
b.isa -> item / val -> 2.
c.isa -> item / val -> 3.
d.isa -> item / val -> 4 / rare -> yes.
`)
	p, err := parser.Program(`r: ins[X].hit -> yes <- X.isa -> item, X.rare -> yes, X.val -> V.`, "p")
	if err != nil {
		t.Fatal(err)
	}
	pl := planRuleCost(p.Rules[0], statsCost(ob))
	// Literal 1 (rare: 1 candidate) must precede literal 0 (isa: 4).
	pos := map[int]int{}
	for where, li := range pl.order {
		pos[li] = where
	}
	if pos[1] > pos[0] {
		t.Errorf("selective literal not first: order %v", pl.order)
	}
}

// TestStaticPlannerOptionAgrees: both planners compute the same fixpoint.
func TestStaticPlannerOptionAgrees(t *testing.T) {
	ob := mustBase(t, enterpriseBase)
	p := mustProgram(t, enterpriseProgram)
	a := mustRun(t, ob, p, Options{})
	b := mustRun(t, ob, p, Options{StaticPlanner: true})
	if !a.Result.Equal(b.Result) || !a.Final.Equal(b.Final) {
		t.Errorf("planners disagree on the fixpoint")
	}
}

// TestPlanBoundBasePreferred: once X is bound, literals on X's versions are
// preferred over opening a second unbound scan.
func TestPlanBoundBasePreferred(t *testing.T) {
	_, pl := planOf(t, `r: ins[X].m -> a <- Y.other -> X, X.t -> 1.`)
	// Literal 0 binds X and Y; literal 1 then has a bound base. Both
	// orders are correct; the planner must simply produce a permutation.
	seen := map[int]bool{}
	for _, li := range pl.order {
		seen[li] = true
	}
	if len(seen) != 2 {
		t.Errorf("order %v is not a permutation", pl.order)
	}
}
