package eval

import (
	"testing"

	"verlog/internal/parser"
)

// fuzzBase is the fixed object base every fuzz input runs against: a small
// isa-hierarchy with scalar and object-valued methods, enough population
// for index probes and joins to take different code paths in the compiled
// executor and the interpreter.
const fuzzBase = `
emp.isa -> class.
mgr.isa -> class.
e1.isa -> emp.   e1.sal -> 1000.  e1.dept -> d1.  e1.boss -> m1.
e2.isa -> emp.   e2.sal -> 2000.  e2.dept -> d1.  e2.boss -> m1.
e3.isa -> emp.   e3.sal -> 3000.  e3.dept -> d2.  e3.boss -> m2.
m1.isa -> mgr.   m1.sal -> 5000.  m1.dept -> d1.
m2.isa -> mgr.   m2.sal -> 6000.  m2.dept -> d2.
d1.isa -> dept.  d1.loc -> north.
d2.isa -> dept.  d2.loc -> south.
`

// FuzzCompiledVsInterpreted feeds arbitrary program text through both body
// evaluators. Inputs that fail to parse, fail the safety/stratification
// checks, or error in either engine are only checked for error agreement;
// inputs both engines accept must produce identical fixpoints. The seeds
// cover the plan shapes the compiler specializes: version probes, result
// probes, joins, negation, comparisons and multi-path heads.
func FuzzCompiledVsInterpreted(f *testing.F) {
	seeds := []string{
		`r1: ins[X].raised <- X.isa -> emp.`,
		`r2: ins[X].sal -> S2 <- X.sal -> S, S2 = S + 100.`,
		`r3: ins[X].peer -> Y <- X.dept -> D, Y.dept -> D, X != Y.`,
		`r4: ins[X].low <- X.isa -> emp, not X.sal -> 3000.`,
		`r5: ins[X].chain -> Z <- X.boss -> Y, Y.dept -> Z.`,
		`a: ins[X].m1 <- X.isa -> emp. b: ins(X).m2 <- a(X).m1.`,
		`t: ins[X].big <- X.sal -> S, S > 1500.`,
		`d: del[X].sal -> S <- X.sal -> S, S < 2000.`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := parser.Program(src, "fuzz.vlg")
		if err != nil {
			return
		}
		obC, err := parser.ObjectBase(fuzzBase, "fuzz-ob.vlg")
		if err != nil {
			t.Fatal(err)
		}
		obI, err := parser.ObjectBase(fuzzBase, "fuzz-ob.vlg")
		if err != nil {
			t.Fatal(err)
		}
		// Bound iterations: fuzzed recursion through arithmetic can diverge,
		// and both engines must hit the same bound.
		resC, errC := Run(obC, p, Options{MaxIterations: 50})
		resI, errI := Run(obI, p, Options{MaxIterations: 50, Interpreted: true})
		if (errC == nil) != (errI == nil) {
			t.Fatalf("error disagreement on %q:\ncompiled:    %v\ninterpreted: %v", src, errC, errI)
		}
		if errC != nil {
			return
		}
		if resC.Fired != resI.Fired {
			t.Errorf("fired disagreement on %q: compiled=%d interpreted=%d", src, resC.Fired, resI.Fired)
		}
		if !resC.Result.Equal(resI.Result) {
			t.Errorf("fixpoint disagreement on %q\ncompiled:\n%s\ninterpreted:\n%s", src,
				parser.FormatFacts(resC.Result, true), parser.FormatFacts(resI.Result, true))
		}
		if !resC.Final.Equal(resI.Final) {
			t.Errorf("final-base disagreement on %q\ncompiled:\n%s\ninterpreted:\n%s", src,
				parser.FormatFacts(resC.Final, true), parser.FormatFacts(resI.Final, true))
		}
	})
}
