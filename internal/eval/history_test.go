package eval

import (
	"testing"

	"verlog/internal/term"
)

func TestHistoryEnterpriseBob(t *testing.T) {
	ob := mustBase(t, enterpriseBase)
	res := mustRun(t, ob, mustProgram(t, enterpriseProgram), Options{})
	steps := History(res.Result, term.Sym("bob"))
	if len(steps) != 3 {
		t.Fatalf("steps = %d, want 3 (bob, mod(bob), del(mod(bob)))\n%v", len(steps), steps)
	}
	if steps[0].V != term.GV(term.Sym("bob")) || steps[0].Kind != 0 {
		t.Errorf("step 0 = %v", steps[0])
	}
	if steps[1].Kind != term.Mod {
		t.Errorf("step 1 kind = %v", steps[1].Kind)
	}
	// The modify swapped 4200 for 4620.
	if len(steps[1].Added) != 1 || steps[1].Added[0].Result != term.Int(4620) {
		t.Errorf("step 1 added = %v", steps[1].Added)
	}
	if len(steps[1].Removed) != 1 || steps[1].Removed[0].Result != term.Int(4200) {
		t.Errorf("step 1 removed = %v", steps[1].Removed)
	}
	// The delete-all emptied the state.
	if steps[2].Kind != term.Del || len(steps[2].State) != 0 || len(steps[2].Removed) != 3 {
		t.Errorf("step 2 = %+v", steps[2])
	}
}

func TestHistoryUntouchedObject(t *testing.T) {
	ob := mustBase(t, `quiet.n -> 1. loud.isa -> empl / sal -> 10.`)
	res := mustRun(t, ob, mustProgram(t, salaryRaise), Options{})
	steps := History(res.Result, term.Sym("quiet"))
	if len(steps) != 1 || len(steps[0].State) != 1 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[0].String() == "" {
		t.Errorf("empty rendering")
	}
}

func TestHistorySkippedStage(t *testing.T) {
	// del(mod(x)) derived directly from x: only two stages appear.
	ob := mustBase(t, `x.m -> a / k -> b.`)
	p := mustProgram(t, `r: del[mod(x)].m -> a <- x.m -> a.`)
	res := mustRun(t, ob, p, Options{})
	steps := History(res.Result, term.Sym("x"))
	if len(steps) != 2 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[1].V != term.GV(term.Sym("x"), term.Mod, term.Del) {
		t.Errorf("step 1 = %v", steps[1].V)
	}
	if len(steps[1].Removed) != 1 || steps[1].Removed[0].Method != "m" {
		t.Errorf("step 1 removed = %v", steps[1].Removed)
	}
}

func TestHistoryUnknownObject(t *testing.T) {
	ob := mustBase(t, `x.m -> a.`)
	if steps := History(ob, term.Sym("ghost")); len(steps) != 0 {
		t.Errorf("steps for unknown object: %v", steps)
	}
}
