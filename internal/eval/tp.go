package eval

import (
	"fmt"
	"slices"

	"verlog/internal/objectbase"
	"verlog/internal/term"
	"verlog/internal/unify"
)

// Update is a fired ground update: an element of the set T¹_P(I) of
// Section 3. For Mod, R is the old result and R2 the new one.
type Update struct {
	Kind term.UpdateKind
	V    term.GVID // the version the update is performed on (inside [...])
	Key  term.MethodKey
	R    term.OID
	R2   term.OID
}

// Target returns the version resulting from the update, Kind(V).
func (u Update) Target() term.GVID { return u.V.Push(u.Kind) }

func (u Update) String() string {
	switch u.Kind {
	case term.Mod:
		return fmt.Sprintf("mod[%s].%s -> (%s, %s)", u.V, u.Key, u.R, u.R2)
	default:
		return fmt.Sprintf("%s[%s].%s -> %s", u.Kind, u.V, u.Key, u.R)
	}
}

// compare orders updates for deterministic traces.
func (u Update) compare(v Update) int {
	if c := u.V.Compare(v.V); c != 0 {
		return c
	}
	if u.Kind != v.Kind {
		if u.Kind < v.Kind {
			return -1
		}
		return 1
	}
	if u.Key.Method != v.Key.Method {
		if u.Key.Method < v.Key.Method {
			return -1
		}
		return 1
	}
	if c := u.R.Compare(v.R); c != 0 {
		return c
	}
	return u.R2.Compare(v.R2)
}

// step1Rule enumerates the rule's body matches against m's base and emits
// every fired ground update that also passes the head-position truth test
// of Section 3. The onFire callback receives the update (one per expanded
// delete-all entry); matched counts complete body matches (i.e. fireHead
// invocations) for the per-rule stats. m carries per-goroutine scratch
// state, so concurrent callers must pass distinct matchers.
func (e *engine) step1Rule(m *matcher, ri int, deltaPos int, delta []term.Fact, matched *int64, onFire func(u Update) error) error {
	r := e.prog.Rules[ri]
	pl := e.plans[ri]
	// With a delta restriction, the restricted literal joins first — the
	// essence of semi-naive evaluation — and the remaining literals follow
	// in plan order. Moving a positive generator to the front only adds
	// bindings, so every later filter still has its variables bound.
	order := pl.order
	if deltaPos >= 0 {
		order = make([]int, 0, len(pl.order))
		order = append(order, pl.order[deltaPos])
		for i, li := range pl.order {
			if i != deltaPos {
				order = append(order, li)
			}
		}
	}
	s := unify.Subst{}
	var tr unify.Trail
	var rec func(step int) error
	rec = func(step int) error {
		if step == len(order) {
			*matched++
			return e.fireHead(r, s, onFire)
		}
		l := r.Body[order[step]]
		if deltaPos >= 0 && step == 0 {
			return e.matchLiteralDelta(l, delta, s, &tr, func() error {
				return rec(step + 1)
			})
		}
		return m.matchLiteral(l, s, &tr, func() error {
			return rec(step + 1)
		})
	}
	if err := rec(0); err != nil {
		return fmt.Errorf("eval: rule %s: %w", r.Label(ri), err)
	}
	return nil
}

// fireHead grounds the rule head under s, applies the head-position truth
// definitions, and emits the resulting updates.
func (e *engine) fireHead(r term.Rule, s unify.Subst, onFire func(u Update) error) error {
	v, ok := s.ResolveVID(r.Head.V)
	if !ok {
		return fmt.Errorf("unbound version base in head %s", r.Head)
	}
	if r.Head.All {
		// del[v].* expands into one delete per method application of v*,
		// excluding the undeletable exists method.
		vstar, ok := e.base.VStar(v)
		if !ok {
			return nil
		}
		var ups []Update
		e.base.ForEachFactOf(vstar, func(f term.Fact) {
			if f.IsExists() {
				return
			}
			ups = append(ups, Update{Kind: term.Del, V: v, Key: f.Key(), R: f.Result})
		})
		slices.SortFunc(ups, func(a, b Update) int { return a.compare(b) })
		for _, u := range ups {
			if err := onFire(u); err != nil {
				return err
			}
		}
		return nil
	}
	key, ok := resolveKey(r.Head.App, s)
	if !ok {
		return fmt.Errorf("unbound argument in head %s", r.Head)
	}
	res, ok := s.ResolveOID(r.Head.App.Result)
	if !ok {
		return fmt.Errorf("unbound result in head %s", r.Head)
	}
	u := Update{Kind: r.Head.Kind, V: v, Key: key, R: res}
	switch r.Head.Kind {
	case term.Ins:
		// An insert in head position is always true.
	case term.Del, term.Mod:
		// del[v].m -> r (and mod[v].m -> (r, r')) are true in head position
		// iff v*.m -> r is in the base.
		vstar, ok := e.base.VStar(v)
		if !ok {
			return nil
		}
		if !e.base.Has(term.Fact{V: vstar, Method: key.Method, Args: key.Args, Result: res}) {
			return nil
		}
		if r.Head.Kind == term.Mod {
			r2, ok := s.ResolveOID(r.Head.NewResult)
			if !ok {
				return fmt.Errorf("unbound new result in head %s", r.Head)
			}
			u.R2 = r2
		}
	}
	return onFire(u)
}

// matchLiteralDelta matches a delta-seedable positive literal against the
// facts added in the previous iteration instead of the full base.
func (e *engine) matchLiteralDelta(l term.Literal, delta []term.Fact, s unify.Subst, tr *unify.Trail, k func() error) error {
	var v term.VersionID
	var app term.MethodApp
	switch a := l.Atom.(type) {
	case term.VersionAtom:
		v, app = a.V, a.App
	case term.UpdateAtom:
		if a.Kind != term.Ins {
			return fmt.Errorf("eval: literal %s is not delta-seedable", l)
		}
		v, app = a.V.Push(term.Ins), a.App
	default:
		return fmt.Errorf("eval: literal %s is not delta-seedable", l)
	}
	mark := tr.Mark()
	for _, f := range delta {
		if f.Method != app.Method || f.V.Path != v.Path {
			continue
		}
		if len(app.Args) != f.Args.Len() {
			continue
		}
		if tr.MatchObj(s, v.Base, f.V.Object) &&
			tr.MatchArgs(s, app.Args, f.Args.Decode()) &&
			tr.MatchObj(s, app.Result, f.Result) {
			if err := k(); err != nil {
				tr.Undo(s, mark)
				return err
			}
		}
		tr.Undo(s, mark)
	}
	return nil
}

// computeState performs steps 2 and 3 of T_P for one target version w:
// copy the state of w (if active) or of v* (if only relevant) — or seed a
// fresh object — then apply the fired updates: removals first (del and the
// old halves of mod), then additions (ins and the new halves of mod).
func (e *engine) computeState(w term.GVID, ups []Update, a *objectbase.StateArena) *objectbase.State {
	var st *objectbase.State
	switch {
	case e.base.Exists(w):
		st = a.Clone(e.base.StateOf(w))
	default:
		v := term.GVID{Object: w.Object, Path: w.Path[:w.Path.Len()-1]}
		// Path-0 parents can be read straight from the frozen base: the
		// overlay's own layer never holds path-0 versions (heads push), so
		// readBase skips the guaranteed own-layer miss.
		if vstar, ok := e.readBase(v).VStar(v); ok {
			st = a.Clone(e.readBase(vstar).StateOf(vstar))
		} else {
			// Creation of a new object (extension; see DESIGN.md): seed the
			// exists method so later updates can address the version.
			st = a.New()
			st.Add(term.MethodKey{Method: term.ExistsMethod}, w.Object)
		}
	}
	for _, u := range ups {
		switch u.Kind {
		case term.Del, term.Mod:
			st.Remove(u.Key, u.R)
		}
	}
	for _, u := range ups {
		switch u.Kind {
		case term.Ins:
			st.Add(u.Key, u.R)
		case term.Mod:
			st.Add(u.Key, u.R2)
		}
	}
	return st
}
