package eval

import (
	"testing"

	"verlog/internal/term"
)

// --- Argumented methods under each update kind -------------------------------

func TestDeleteWithArguments(t *testing.T) {
	ob := mustBase(t, `
shop.price@apple -> 3 / price@pear -> 4 / open -> yes.
`)
	p := mustProgram(t, `r: del[shop].price@apple -> P <- shop.price@apple -> P.`)
	res := mustRun(t, ob, p, Options{})
	wantNoFact(t, res.Final, `shop.price@apple -> 3.`)
	wantFact(t, res.Final, `shop.price@pear -> 4. shop.open -> yes.`)
}

func TestInsertWithBoundArgumentsFromBody(t *testing.T) {
	ob := mustBase(t, `
a.rate@2025 -> 10.
b.rate@2025 -> 20.
`)
	p := mustProgram(t, `r: ins[X].rate@2026 -> R2 <- X.rate@2025 -> R, R2 = R * 2.`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `a.rate@2026 -> 20. b.rate@2026 -> 40. a.rate@2025 -> 10.`)
}

// --- Negated mod update-term in body -----------------------------------------

func TestNegatedModBodyTerm(t *testing.T) {
	// Flag employees whose salary was NOT modified (no raise applied).
	ob := mustBase(t, `
phil.isa -> empl / sal -> 100 / eligible -> yes.
mary.isa -> empl / sal -> 200.
`)
	p := mustProgram(t, `
r1: mod[E].sal -> (S, S') <- E.isa -> empl / eligible -> yes / sal -> S, S' = S + 1.
r2: ins[mod(E)].skipped -> no  <- mod(E).isa -> empl, mod[E].sal -> (S, S').
`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Result, `ins(mod(phil)).skipped -> no.`)
	// mary was never modified: no mod(mary) version at all.
	if res.Result.HasVersion(term.GV(term.Sym("mary"), term.Mod)) {
		t.Errorf("mary should have no mod version")
	}
}

// --- mod body term with unbound base over several objects --------------------

func TestModBodyEnumeratesObjects(t *testing.T) {
	ob := mustBase(t, `
a.n -> 1. b.n -> 2. c.m -> 3.
`)
	p := mustProgram(t, `
r1: mod[X].n -> (N, N') <- X.n -> N, N' = N * 10.
r2: ins[mod(X)].log -> N' <- mod[X].n -> (N, N').
`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Result, `ins(mod(a)).log -> 10. ins(mod(b)).log -> 20.`)
	if res.Result.HasVersion(term.GV(term.Sym("c"), term.Mod)) {
		t.Errorf("c has no n method; no mod version expected")
	}
}

// --- Update facts on versions (ground heads with paths) ----------------------

func TestGroundHeadOnSkippedVersion(t *testing.T) {
	// A fact-form insert addressed two levels up the chain: copy comes
	// from the object itself.
	ob := mustBase(t, `x.m -> a.`)
	p := mustProgram(t, `ins[mod(x)].k -> b.`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Result, `ins(mod(x)).m -> a. ins(mod(x)).k -> b.`)
	wantFact(t, res.Final, `x.m -> a. x.k -> b.`)
}

// --- Multiple strata interacting with delete-all ------------------------------

func TestDeleteAllThenRebuild(t *testing.T) {
	// Wipe an object and rebuild it from a surviving note: exists keeps
	// the deleted version addressable, exactly the Section 3 rationale.
	ob := mustBase(t, `doc.text -> old / author -> ann.`)
	p := mustProgram(t, `
wipe:    del[doc].* <- doc.text -> old.
rebuild: ins[del(doc)].text -> fresh <- del[doc].text -> T.
`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `doc.text -> fresh.`)
	wantNoFact(t, res.Final, `doc.text -> old. doc.author -> ann.`)
}

// --- Self-referential result positions ----------------------------------------

func TestRepeatedVariableInHead(t *testing.T) {
	ob := mustBase(t, `a.isa -> node. b.isa -> node.`)
	p := mustProgram(t, `r: ins[X].self -> X <- X.isa -> node.`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `a.self -> a. b.self -> b.`)
	wantNoFact(t, res.Final, `a.self -> b.`)
}

// --- Repeated variables as a join filter ---------------------------------------

func TestRepeatedVariableJoins(t *testing.T) {
	ob := mustBase(t, `
a.from -> x / to -> x.
b.from -> x / to -> y.
`)
	p := mustProgram(t, `r: ins[E].loop -> yes <- E.from -> N, E.to -> N.`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `a.loop -> yes.`)
	wantNoFact(t, res.Final, `b.loop -> yes.`)
}

// --- Empty program / empty base ------------------------------------------------

func TestEmptyProgram(t *testing.T) {
	ob := mustBase(t, `x.m -> a.`)
	res := mustRun(t, ob, &term.Program{}, Options{})
	if res.Fired != 0 {
		t.Errorf("fired = %d", res.Fired)
	}
	wantFact(t, res.Final, `x.m -> a.`)
}

func TestEmptyBase(t *testing.T) {
	ob := mustBase(t, ``)
	p := mustProgram(t, `r: ins[X].m -> a <- X.t -> 1.`)
	res := mustRun(t, ob, p, Options{})
	if res.Fired != 0 || res.Final.Size() != 0 {
		t.Errorf("fired=%d size=%d", res.Fired, res.Final.Size())
	}
}

// --- Negation with arguments ----------------------------------------------------

func TestNegatedArgumentedAtom(t *testing.T) {
	ob := mustBase(t, `
a.rate@1 -> 10.
b.rate@1 -> 10 / blocked@1 -> yes.
`)
	p := mustProgram(t, `r: ins[X].ok@1 -> yes <- X.rate@1 -> R, !X.blocked@1 -> yes.`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `a.ok@1 -> yes.`)
	wantNoFact(t, res.Final, `b.ok@1 -> yes.`)
}
