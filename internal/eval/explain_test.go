package eval

import (
	"strings"
	"testing"

	"verlog/internal/parser"
	"verlog/internal/term"
)

func tracedEnterprise(t *testing.T) *Result {
	t.Helper()
	ob := mustBase(t, enterpriseBase)
	return mustRun(t, ob, mustProgram(t, enterpriseProgram), Options{Trace: true})
}

func mustFact(t *testing.T, src string) term.Fact {
	t.Helper()
	fs, err := parser.Facts(src, "f")
	if err != nil || len(fs) != 1 {
		t.Fatalf("fact %q: %v", src, err)
	}
	return fs[0]
}

func TestExplainUpdateProvenance(t *testing.T) {
	res := tracedEnterprise(t)
	// The modified salary comes from rule1's modify.
	e := res.Explain(mustFact(t, `mod(phil).sal -> 4600.`))
	if e.Kind != ProvenanceUpdate || e.Event == nil || e.Event.Rule != "rule1" {
		t.Errorf("explanation = %+v", e)
	}
	if !strings.Contains(e.String(), "rule1") {
		t.Errorf("String = %s", e)
	}
	// The hpe class membership comes from rule4's insert.
	e = res.Explain(mustFact(t, `ins(mod(phil)).isa -> hpe.`))
	if e.Kind != ProvenanceUpdate || e.Event.Rule != "rule4" {
		t.Errorf("explanation = %+v", e)
	}
}

func TestExplainCopyProvenance(t *testing.T) {
	res := tracedEnterprise(t)
	// phil's position was never updated: in ins(mod(phil)) it is a copy
	// inherited through mod(phil).
	e := res.Explain(mustFact(t, `ins(mod(phil)).pos -> mgr.`))
	if e.Kind != ProvenanceCopy {
		t.Fatalf("kind = %v", e.Kind)
	}
	if e.CopiedFrom != term.GV(term.Sym("phil"), term.Mod) {
		t.Errorf("copied from %v", e.CopiedFrom)
	}
	if e.Event == nil || e.Event.Rule != "rule4" {
		t.Errorf("creator event = %+v", e.Event)
	}
	// Walking one level further reaches the input base.
	e2 := res.Explain(mustFact(t, `mod(phil).pos -> mgr.`))
	if e2.Kind != ProvenanceCopy || e2.CopiedFrom != term.GV(term.Sym("phil")) {
		t.Errorf("second hop = %+v", e2)
	}
	e3 := res.Explain(mustFact(t, `phil.pos -> mgr.`))
	if e3.Kind != ProvenanceInput {
		t.Errorf("input hop = %+v", e3)
	}
}

func TestExplainUnknown(t *testing.T) {
	res := tracedEnterprise(t)
	e := res.Explain(mustFact(t, `ghost.sal -> 1.`))
	if e.Kind != ProvenanceUnknown {
		t.Errorf("kind = %v", e.Kind)
	}
	if !strings.Contains(e.String(), "not derivable") {
		t.Errorf("String = %s", e)
	}
}

func TestExplainModOldValueGone(t *testing.T) {
	res := tracedEnterprise(t)
	// The old salary is absent from the mod version; Explain on the old
	// version still reports input provenance.
	if res.Result.Has(mustFact(t, `mod(phil).sal -> 4000.`)) {
		t.Fatalf("old value should be replaced")
	}
	e := res.Explain(mustFact(t, `phil.sal -> 4000.`))
	if e.Kind != ProvenanceInput {
		t.Errorf("kind = %v", e.Kind)
	}
}
