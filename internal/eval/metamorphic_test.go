package eval

import (
	"testing"

	"verlog/internal/objectbase"
	"verlog/internal/term"
	"verlog/internal/workload"
)

// Metamorphic property: evaluation commutes with consistent renaming of
// symbol OIDs. Renaming every symbol in the base and in the program's
// ground terms, running, and renaming back must give the original result —
// the engine cannot depend on the spelling of object identities.

func renameOID(o term.OID) term.OID {
	if o.Sort() == term.SortSym {
		return term.Sym("ren_" + o.Name())
	}
	return o
}

func renameObjTerm(t term.ObjTerm) term.ObjTerm {
	if o, ok := t.(term.OID); ok {
		return renameOID(o)
	}
	return t
}

func renameApp(a term.MethodApp) term.MethodApp {
	out := term.MethodApp{Method: a.Method, Result: renameObjTerm(a.Result)}
	for _, arg := range a.Args {
		out.Args = append(out.Args, renameObjTerm(arg))
	}
	return out
}

func renameExpr(e term.Expr) term.Expr {
	switch x := e.(type) {
	case term.ConstExpr:
		return term.ConstExpr{OID: renameOID(x.OID)}
	case term.BinExpr:
		return term.BinExpr{Op: x.Op, L: renameExpr(x.L), R: renameExpr(x.R)}
	case term.NegExpr:
		return term.NegExpr{E: renameExpr(x.E)}
	default:
		return e
	}
}

func renameAtom(a term.Atom) term.Atom {
	switch x := a.(type) {
	case term.VersionAtom:
		return term.VersionAtom{
			V:   term.VersionID{Base: renameObjTerm(x.V.Base), Path: x.V.Path, Any: x.V.Any},
			App: renameApp(x.App),
		}
	case term.UpdateAtom:
		out := term.UpdateAtom{
			Kind: x.Kind,
			V:    term.VersionID{Base: renameObjTerm(x.V.Base), Path: x.V.Path},
			All:  x.All,
		}
		if !x.All {
			out.App = renameApp(x.App)
			if x.NewResult != nil {
				out.NewResult = renameObjTerm(x.NewResult)
			}
		}
		return out
	case term.BuiltinAtom:
		return term.BuiltinAtom{Op: x.Op, L: renameExpr(x.L), R: renameExpr(x.R)}
	default:
		return a
	}
}

func renameProgram(p *term.Program) *term.Program {
	out := &term.Program{}
	for _, r := range p.Rules {
		nr := term.Rule{Head: renameAtom(r.Head).(term.UpdateAtom), Name: r.Name, Line: r.Line}
		for _, l := range r.Body {
			nr.Body = append(nr.Body, term.Literal{Neg: l.Neg, Atom: renameAtom(l.Atom)})
		}
		out.Rules = append(out.Rules, nr)
	}
	return out
}

func renameBase(b *objectbase.Base) *objectbase.Base {
	out := objectbase.New()
	for _, f := range b.Facts() {
		var args []term.OID
		for _, a := range f.Args.Decode() {
			args = append(args, renameOID(a))
		}
		out.Insert(term.Fact{
			V:      term.GVID{Object: renameOID(f.V.Object), Path: f.V.Path},
			Method: f.Method,
			Args:   term.EncodeOIDs(args),
			Result: renameOID(f.Result),
		})
	}
	return out
}

func TestMetamorphicRenaming(t *testing.T) {
	cases := []struct {
		name string
		base *objectbase.Base
		prog string
	}{
		{"enterprise", workload.EnterpriseSpec{Employees: 50, Seed: 17}.ObjectBase(), workload.EnterpriseProgram},
		{"ancestors", workload.GenealogySpec{Generations: 5, Branching: 2}.ObjectBase(), workload.AncestorsProgram},
		{"paper", nil, enterpriseProgram},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base := c.base
			if base == nil {
				base = mustBase(t, enterpriseBase)
			}
			prog := mustProgram(t, c.prog)

			plain, err := Run(base, prog, Options{})
			if err != nil {
				t.Fatalf("plain run: %v", err)
			}
			renamed, err := Run(renameBase(base), renameProgram(prog), Options{})
			if err != nil {
				t.Fatalf("renamed run: %v", err)
			}
			// Renaming the plain result must equal the renamed result.
			if !renameBase(plain.Result).Equal(renamed.Result) {
				t.Errorf("fixpoints not isomorphic under renaming")
			}
			if !renameBase(plain.Final).Equal(renamed.Final) {
				t.Errorf("finals not isomorphic under renaming")
			}
			if plain.Fired != renamed.Fired {
				t.Errorf("fired: %d vs %d", plain.Fired, renamed.Fired)
			}
		})
	}
}
