package eval

import (
	"errors"
	"testing"

	"verlog/internal/objectbase"
	"verlog/internal/parser"
	"verlog/internal/term"
)

func mustProgram(t *testing.T, src string) *term.Program {
	t.Helper()
	p, err := parser.Program(src, "test.vlg")
	if err != nil {
		t.Fatalf("parse program: %v", err)
	}
	return p
}

func mustBase(t *testing.T, src string) *objectbase.Base {
	t.Helper()
	b, err := parser.ObjectBase(src, "test-ob.vlg")
	if err != nil {
		t.Fatalf("parse object base: %v", err)
	}
	return b
}

func mustRun(t *testing.T, ob *objectbase.Base, p *term.Program, opts Options) *Result {
	t.Helper()
	res, err := Run(ob, p, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func wantFact(t *testing.T, b *objectbase.Base, src string) {
	t.Helper()
	fs, err := parser.Facts(src, "want.vlg")
	if err != nil {
		t.Fatalf("parse fact %q: %v", src, err)
	}
	for _, f := range fs {
		if !b.Has(f) {
			t.Errorf("missing fact %s\nbase:\n%s", f, parser.FormatFacts(b, true))
		}
	}
}

func wantNoFact(t *testing.T, b *objectbase.Base, src string) {
	t.Helper()
	fs, err := parser.Facts(src, "want.vlg")
	if err != nil {
		t.Fatalf("parse fact %q: %v", src, err)
	}
	for _, f := range fs {
		if b.Has(f) {
			t.Errorf("unexpected fact %s\nbase:\n%s", f, parser.FormatFacts(b, true))
		}
	}
}

// --- Section 2.1: the single salary-raise rule -------------------------

const salaryRaise = `
raise: mod[E].sal -> (S, S') <- E.isa -> empl, E.sal -> S, S' = S * 1.1.
`

// TestSalaryRaiseSection21 reproduces the paper's first example: henry with
// salary 250 ends with exactly 275 — once, not repeatedly, because the rule
// only applies to the initial (OID-denoted) version.
func TestSalaryRaiseSection21(t *testing.T) {
	ob := mustBase(t, `henry.isa -> empl / sal -> 250.`)
	res := mustRun(t, ob, mustProgram(t, salaryRaise), Options{})
	wantFact(t, res.Result, `mod(henry).sal -> 275. mod(henry).isa -> empl.`)
	wantNoFact(t, res.Result, `mod(henry).sal -> 250.`)
	// The update terminates: no mod(mod(henry)) version appears.
	for _, v := range res.Result.VersionsOf(term.Sym("henry")) {
		if v.Path.Len() > 1 {
			t.Errorf("unexpected deep version %s: salary raise must fire exactly once", v)
		}
	}
	wantFact(t, res.Final, `henry.sal -> 275. henry.isa -> empl.`)
	wantNoFact(t, res.Final, `henry.sal -> 250.`)
}

// --- Section 2.3 / Figure 2: the enterprise update ---------------------

const enterpriseProgram = `
rule1: mod[E].sal -> (S, S') <-
    E.isa -> empl / pos -> mgr / sal -> S, S' = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S') <-
    E.isa -> empl / sal -> S, !E.pos -> mgr, S' = S * 1.1.
rule3: del[mod(E)].* <-
    mod(E).isa -> empl / boss -> B / sal -> SE,
    mod(B).isa -> empl / sal -> SB, SE > SB.
rule4: ins[mod(E)].isa -> hpe <-
    mod(E).isa -> empl / sal -> S, S > 4500, !del[mod(E)].isa -> empl.
`

const enterpriseBase = `
phil.isa -> empl / pos -> mgr / sal -> 4000.
bob.isa -> empl / boss -> phil / sal -> 4200.
`

// TestEnterpriseFigure2 reproduces the full Figure 2 trace: phil is raised
// to 4600 and joins hpe; bob is raised to 4620, out-earns his boss, and is
// fired (vanishes from the new object base).
func TestEnterpriseFigure2(t *testing.T) {
	for _, strategy := range []Strategy{Naive, SemiNaive} {
		t.Run(strategy.String(), func(t *testing.T) {
			ob := mustBase(t, enterpriseBase)
			res := mustRun(t, ob, mustProgram(t, enterpriseProgram), Options{Strategy: strategy})

			// Figure 2, intermediate versions in result(P):
			wantFact(t, res.Result, `
mod(phil).sal -> 4600. mod(phil).isa -> empl. mod(phil).pos -> mgr.
mod(bob).sal -> 4620.  mod(bob).isa -> empl.  mod(bob).boss -> phil.
ins(mod(phil)).isa -> hpe. ins(mod(phil)).isa -> empl. ins(mod(phil)).sal -> 4600.
`)
			// del(mod(bob)) exists but holds nothing beyond exists.
			delBob := term.GV(term.Sym("bob"), term.Mod, term.Del)
			if !res.Result.Exists(delBob) {
				t.Errorf("version %s should exist", delBob)
			}
			if st := res.Result.StateOf(delBob); st == nil || !st.OnlyExists() {
				t.Errorf("state of %s should hold only exists", delBob)
			}
			wantNoFact(t, res.Result, `del(mod(bob)).isa -> empl. del(mod(bob)).sal -> 4620.`)
			// No hpe for bob.
			wantNoFact(t, res.Result, `ins(mod(bob)).isa -> hpe.`)

			// New object base ob': phil updated, bob gone.
			wantFact(t, res.Final, `
phil.isa -> empl / isa -> hpe / pos -> mgr / sal -> 4600.
`)
			if got := res.Final.VersionsOf(term.Sym("bob")); len(got) != 0 {
				t.Errorf("bob should be gone from ob', has versions %v", got)
			}
			// Exactly three strata, as the paper derives in Section 4.
			if res.Assignment.NumStrata() != 3 {
				t.Errorf("NumStrata = %d, want 3", res.Assignment.NumStrata())
			}
		})
	}
}

// TestEnterpriseControlOrder is the Section 2.4 discussion: with bob at
// $4100 the raise happens before the firing check, so bob (4510) no longer
// out-earns phil (4600) and keeps his job. An uncontrolled evaluation that
// fires before raising would wrongly sack him; the VID structure prevents
// that.
func TestEnterpriseControlOrder(t *testing.T) {
	ob := mustBase(t, `
phil.isa -> empl / pos -> mgr / sal -> 4000.
bob.isa -> empl / boss -> phil / sal -> 4100.
`)
	res := mustRun(t, ob, mustProgram(t, enterpriseProgram), Options{})
	wantFact(t, res.Final, `
phil.isa -> empl / isa -> hpe / pos -> mgr / sal -> 4600.
bob.isa -> empl / boss -> phil / sal -> 4510.
`)
	// bob stays employed and joins hpe (4510 > 4500).
	wantFact(t, res.Final, `bob.isa -> hpe.`)
}

// --- Section 2.3: hypothetical reasoning ("richest") -------------------

const hypotheticalProgram = `
rule1: mod[E].sal -> (S, S') <- E.sal -> S / factor -> F, S' = S * F.
rule2: mod[mod(E)].sal -> (S', S) <- mod(E).sal -> S', E.sal -> S.
rule3: ins[mod(mod(peter))].richest -> no <-
       mod(E).sal -> SE, mod(peter).sal -> SP, SE > SP.
rule4: ins[ins(mod(mod(peter)))].richest -> yes <-
       !ins(mod(mod(peter))).richest -> no.
`

// TestHypotheticalRichestYes: after the hypothetical raise peter (100*2 =
// 200) tops anna (150*1.2 = 180), so he would be the richest; the raise
// itself is revised away and salaries in ob' stay unchanged.
func TestHypotheticalRichestYes(t *testing.T) {
	ob := mustBase(t, `
peter.isa -> empl / sal -> 100 / factor -> 2.
anna.isa -> empl / sal -> 150 / factor -> 1.2.
`)
	res := mustRun(t, ob, mustProgram(t, hypotheticalProgram), Options{})
	// The hypothetical versions:
	wantFact(t, res.Result, `
mod(peter).sal -> 200. mod(anna).sal -> 180.
mod(mod(peter)).sal -> 100. mod(mod(anna)).sal -> 150.
`)
	// Verdict: yes; and the raise is revised in ob'.
	wantFact(t, res.Final, `peter.richest -> yes. peter.sal -> 100. anna.sal -> 150.`)
	wantNoFact(t, res.Final, `peter.richest -> no. peter.sal -> 200.`)
}

// TestHypotheticalRichestNo: anna's factor 3 raise (450) tops peter (200).
func TestHypotheticalRichestNo(t *testing.T) {
	ob := mustBase(t, `
peter.isa -> empl / sal -> 100 / factor -> 2.
anna.isa -> empl / sal -> 150 / factor -> 3.
`)
	res := mustRun(t, ob, mustProgram(t, hypotheticalProgram), Options{})
	wantFact(t, res.Final, `peter.richest -> no. peter.sal -> 100. anna.sal -> 150.`)
	wantNoFact(t, res.Final, `peter.richest -> yes.`)
}

// --- Section 2.3: recursive ancestors -----------------------------------

const ancestorsProgram = `
base: ins[X].anc -> P <- X.isa -> person / parents -> P.
step: ins[X].anc -> P <- ins(X).isa -> person / anc -> A,
                         A.isa -> person / parents -> P.
`

// TestRecursiveAncestors computes the transitive parents closure with the
// paper's recursive insert rules; anc and parents are set-valued.
func TestRecursiveAncestors(t *testing.T) {
	for _, strategy := range []Strategy{Naive, SemiNaive} {
		t.Run(strategy.String(), func(t *testing.T) {
			ob := mustBase(t, `
alice.isa -> person / parents -> bob / parents -> carol.
bob.isa -> person / parents -> dave.
carol.isa -> person / parents -> erin.
dave.isa -> person.
erin.isa -> person.
`)
			res := mustRun(t, ob, mustProgram(t, ancestorsProgram), Options{Strategy: strategy})
			wantFact(t, res.Final, `
alice.anc -> bob / anc -> carol / anc -> dave / anc -> erin.
bob.anc -> dave.
carol.anc -> erin.
`)
			wantNoFact(t, res.Final, `alice.anc -> alice. dave.anc -> dave.`)
			// One stratum; the recursion happens inside it.
			if res.Assignment.NumStrata() != 1 {
				t.Errorf("NumStrata = %d, want 1", res.Assignment.NumStrata())
			}
		})
	}
}

// --- Footnote 2: negated update-term vs negated version-term ------------

// TestNegatedUpdateVsVersionTerm builds the situation of footnote 2: a
// delete-update removed bob's bonus but kept isa -> empl. The negated
// update-term !del[mod(E)].isa -> empl is then TRUE (no such deletion was
// performed), while the negated version-term !del(mod(E)).isa -> empl is
// FALSE (the version holds isa -> empl). The two rules therefore differ.
func TestNegatedUpdateVsVersionTerm(t *testing.T) {
	base := `
bob.isa -> empl / sal -> 5000 / bonus -> 100.
`
	progUpdateTerm := `
r1: mod[E].sal -> (S, S) <- E.isa -> empl / sal -> S.
r2: del[mod(E)].bonus -> B <- mod(E).bonus -> B.
r3: ins[del(mod(E))].isa -> hpe <- del(mod(E)).sal -> S, S > 4500,
                                   !del[mod(E)].isa -> empl.
`
	progVersionTerm := `
r1: mod[E].sal -> (S, S) <- E.isa -> empl / sal -> S.
r2: del[mod(E)].bonus -> B <- mod(E).bonus -> B.
r3: ins[del(mod(E))].isa -> hpe <- del(mod(E)).sal -> S, S > 4500,
                                   !del(mod(E)).isa -> empl.
`
	res1 := mustRun(t, mustBase(t, base), mustProgram(t, progUpdateTerm), Options{})
	wantFact(t, res1.Final, `bob.isa -> hpe.`) // no isa-deletion performed -> rule fires

	res2 := mustRun(t, mustBase(t, base), mustProgram(t, progVersionTerm), Options{})
	wantNoFact(t, res2.Final, `bob.isa -> hpe.`) // version still holds isa -> empl -> negation fails
}

// --- Version linearity ---------------------------------------------------

// TestLinearityViolation: two independent update types on the same initial
// version create incomparable versions mod(o) and del(o); the run-time
// check of Section 5 must reject the program.
func TestLinearityViolation(t *testing.T) {
	ob := mustBase(t, `o.t -> 1 / m -> a.`)
	p := mustProgram(t, `
ra: mod[X].m -> (a, b) <- X.t -> 1.
rb: del[X].m -> a <- X.t -> 1.
`)
	_, err := Run(ob, p, Options{})
	var le *LinearityError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LinearityError", err)
	}
	if le.Object != term.Sym("o") {
		t.Errorf("object = %v, want o", le.Object)
	}
}

// TestInputLinearityChecked: an input base that already violates linearity
// is rejected up front.
func TestInputLinearityChecked(t *testing.T) {
	ob := objectbase.New()
	o := term.Sym("o")
	ob.EnsureObject(o)
	ob.Insert(term.NewFact(term.GV(o, term.Mod), "m", term.Sym("a")))
	ob.Insert(term.NewFact(term.GV(o, term.Del), "m", term.Sym("a")))
	_, err := Run(ob, mustProgram(t, `ins[X].k -> b <- X.m -> a.`), Options{})
	var le *LinearityError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LinearityError", err)
	}
}

// --- Update-terms in rule bodies (positive occurrence) ------------------

// TestPositiveUpdateTermBody: a rule reacting to a performed modification,
// using the positive mod[...] body form with distinct old/new results.
func TestPositiveUpdateTermBody(t *testing.T) {
	ob := mustBase(t, `carl.isa -> empl / sal -> 100.`)
	p := mustProgram(t, `
r1: mod[E].sal -> (S, S') <- E.isa -> empl / sal -> S, S' = S + 50.
r2: ins[mod(E)].raised -> yes <- mod[E].sal -> (S, S').
`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `carl.sal -> 150. carl.raised -> yes.`)
}

// TestPositiveModBodyEqualResults: the r = r' case of the Section 3 truth
// table — the revision rule of the hypothetical example relies on it when
// factor = 1 (raise equals original).
func TestPositiveModBodyEqualResults(t *testing.T) {
	ob := mustBase(t, `p.sal -> 100 / factor -> 1.`)
	p := mustProgram(t, `
r1: mod[E].sal -> (S, S') <- E.sal -> S / factor -> F, S' = S * F.
r2: ins[mod(E)].noted -> yes <- mod[E].sal -> (S, S'), S = S'.
`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Result, `ins(mod(p)).noted -> yes.`)
}

// --- New-object creation (extension) -------------------------------------

func TestNewObjectCreation(t *testing.T) {
	ob := mustBase(t, `a.isa -> thing.`)
	p := mustProgram(t, `r: ins[log1].notes -> X <- X.isa -> thing.`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `log1.notes -> a.`)

	_, err := Run(ob, p, Options{ForbidNewObjects: true})
	var ne *NewObjectError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want NewObjectError", err)
	}
}

// --- Deletion keeps exists ----------------------------------------------

func TestDeleteAllKeepsExists(t *testing.T) {
	ob := mustBase(t, `x.m -> a / k -> b.`)
	p := mustProgram(t, `r: del[X].* <- X.m -> a.`)
	res := mustRun(t, ob, p, Options{})
	delX := term.GV(term.Sym("x"), term.Del)
	if !res.Result.Exists(delX) {
		t.Fatalf("del(x) must keep its exists note")
	}
	st := res.Result.StateOf(delX)
	if st == nil || !st.OnlyExists() {
		t.Fatalf("del(x) should hold only exists, has %d facts", st.Size())
	}
	// x vanishes from ob'.
	if len(res.Final.VersionsOf(term.Sym("x"))) != 0 {
		t.Errorf("x should be gone from ob'")
	}
}

// --- Determinism and equivalence of strategies ---------------------------

func TestStrategiesAgree(t *testing.T) {
	ob1 := mustBase(t, enterpriseBase)
	ob2 := mustBase(t, enterpriseBase)
	r1 := mustRun(t, ob1, mustProgram(t, enterpriseProgram), Options{Strategy: Naive})
	r2 := mustRun(t, ob2, mustProgram(t, enterpriseProgram), Options{Strategy: SemiNaive})
	if !r1.Result.Equal(r2.Result) {
		t.Errorf("naive and semi-naive fixpoints differ:\nnaive:\n%s\nsemi-naive:\n%s",
			parser.FormatFacts(r1.Result, true), parser.FormatFacts(r2.Result, true))
	}
	if !r1.Final.Equal(r2.Final) {
		t.Errorf("naive and semi-naive finals differ")
	}
}

// TestInputNotModified: Run works on a clone.
func TestInputNotModified(t *testing.T) {
	ob := mustBase(t, enterpriseBase)
	before := ob.Clone()
	mustRun(t, ob, mustProgram(t, enterpriseProgram), Options{})
	if !ob.Equal(before) {
		t.Errorf("input base was modified by Run")
	}
}

// --- Trace ----------------------------------------------------------------

func TestTraceRecordsFigure2(t *testing.T) {
	ob := mustBase(t, enterpriseBase)
	res := mustRun(t, ob, mustProgram(t, enterpriseProgram), Options{Trace: true})
	var rules []string
	for _, ev := range res.Trace {
		rules = append(rules, ev.Rule)
	}
	// rule1 (phil), rule2 (bob), rule3 (bob's delete-all: 3 method
	// applications), rule4 (phil).
	counts := map[string]int{}
	for _, r := range rules {
		counts[r]++
	}
	if counts["rule1"] != 1 || counts["rule2"] != 1 || counts["rule3"] != 3 || counts["rule4"] != 1 {
		t.Errorf("trace rule counts = %v, want rule1:1 rule2:1 rule3:3 rule4:1\n%v", counts, res.Trace)
	}
}

// --- Query over result(P) -------------------------------------------------

func TestQueryOverVersions(t *testing.T) {
	ob := mustBase(t, enterpriseBase)
	res := mustRun(t, ob, mustProgram(t, enterpriseProgram), Options{})
	lits, err := parser.Query(`mod(E).sal -> S, S > 4500.`, "q.vlg")
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	bindings, err := Query(res.Result, lits)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(bindings) != 2 {
		t.Fatalf("got %d bindings, want 2: %v", len(bindings), bindings)
	}
	if bindings[0].String() != "E=bob, S=4620" || bindings[1].String() != "E=phil, S=4600" {
		t.Errorf("bindings = %v", bindings)
	}
}
