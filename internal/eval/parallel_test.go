package eval

import (
	"errors"
	"testing"

	"verlog/internal/objectbase"
	"verlog/internal/workload"
)

// TestParallelMatchesSequential: parallel evaluation computes exactly the
// sequential fixpoint on every standard workload. Under -race this also
// exercises the concurrency safety of the read-only matching phase.
func TestParallelMatchesSequential(t *testing.T) {
	workloads := []struct {
		name    string
		base    func() *objectbase.Base
		prog    string
		workers int
	}{
		{"enterprise", workload.EnterpriseSpec{Employees: 150, Seed: 3}.ObjectBase, workload.EnterpriseProgram, 4},
		{"ancestors", workload.GenealogySpec{Generations: 6, Branching: 2}.ObjectBase, workload.AncestorsProgram, 8},
		{"chains", func() *objectbase.Base { return workload.Items(100) }, workload.ChainProgram(5), 3},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			b := w.base()
			p := mustProgram(t, w.prog)
			seq, err := Run(b, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Run(b, p, Options{Parallelism: w.workers})
			if err != nil {
				t.Fatal(err)
			}
			if !seq.Result.Equal(par.Result) || !seq.Final.Equal(par.Final) {
				t.Errorf("parallel fixpoint differs from sequential")
			}
			if seq.Fired != par.Fired {
				t.Errorf("fired: seq %d, par %d", seq.Fired, par.Fired)
			}
		})
	}
}

// TestParallelErrorPropagates: an evaluation error in one worker surfaces.
func TestParallelErrorPropagates(t *testing.T) {
	ob := mustBase(t, `a.m -> henry. b.m -> 2. c.m -> 3. d.m -> 4.`)
	p := mustProgram(t, `
r1: ins[X].k -> V <- X.m -> M, V = M * 2.
r2: ins[X].j -> V <- X.m -> M, V = M + 1.
r3: ins[X].i -> V <- X.m -> M, V = M - 1.
`)
	if _, err := Run(ob, p, Options{Parallelism: 4}); err == nil {
		t.Fatalf("type error swallowed in parallel mode")
	}
}

// TestParallelLinearityViolationDetected: the online check still rejects
// branching version trees under parallel evaluation.
func TestParallelLinearityViolationDetected(t *testing.T) {
	ob := mustBase(t, `o.t -> 1 / m -> a.`)
	p := mustProgram(t, `
ra: mod[X].m -> (a, b) <- X.t -> 1.
rb: del[X].m -> a <- X.t -> 1.
`)
	_, err := Run(ob, p, Options{Parallelism: 4})
	var le *LinearityError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LinearityError", err)
	}
}

// TestParallelTraceDeterministic: merged in task order, the trace is
// stable across parallel runs.
func TestParallelTraceDeterministic(t *testing.T) {
	ob := workload.EnterpriseSpec{Employees: 40, Seed: 9}.ObjectBase()
	p := mustProgram(t, workload.EnterpriseProgram)
	var first []TraceEvent
	for i := 0; i < 4; i++ {
		res, err := Run(ob, p, Options{Parallelism: 6, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res.Trace
			continue
		}
		if len(res.Trace) != len(first) {
			t.Fatalf("trace length varies: %d vs %d", len(res.Trace), len(first))
		}
		for j := range first {
			if first[j] != res.Trace[j] {
				t.Fatalf("trace differs at %d: %v vs %v", j, first[j], res.Trace[j])
			}
		}
	}
}
