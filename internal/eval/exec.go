package eval

// exec.go runs compiled match plans (compile.go). An executor is the
// compiled counterpart of matcher: single-goroutine state holding the
// frame and candidate-buffer arena for one worker. Where the interpreter
// threads a map-based substitution with a backtracking trail through
// every literal, the executor works on a flat []term.OID frame indexed by
// compile-time slots. No trail is needed: binding modes are static (the
// first occurrence of a variable writes, later ones compare), a failed
// candidate's partial bindings are overwritten by the next candidate
// before anything reads them, and each step zeroes the slots it binds
// when it exhausts so outer candidates start clean.

import (
	"fmt"
	"slices"

	"verlog/internal/builtin"
	"verlog/internal/objectbase"
	"verlog/internal/term"
)

// executor evaluates compiled rules against a base. Candidate buffers are
// arena free-lists working as stacks across the nested step enumerations,
// exactly like matcher's (scans must collect before recursing: the
// objectbase iterators cannot early-exit or propagate errors). Index
// probes skip collection entirely — they iterate the shared index slice,
// which is immutable after build.
type executor struct {
	base *objectbase.Base
	// p0 is base's parent when base is an overlay, nil otherwise. During a
	// fixpoint, rule heads only push onto paths, so the overlay's own layer
	// never shadows a path-0 version: reads of path-0 VIDs can go straight
	// to the parent, skipping the own-layer miss on the hottest lookups.
	p0  *objectbase.Base
	idx *objectbase.LiteralIndex

	frames [][]term.OID
	vids   [][]term.GVID
	oids   [][]term.OID
	krs    [][]keyResult
	ups    []Update   // fireHead delete-all scratch
	args   []term.OID // resolveKey scratch, consumed before any recursion

	// Two-entry state cache. Plans touch the same candidate VIDs in several
	// consecutive steps (the scan driver, then one lookup per further body
	// literal, often alternating between two joined versions), and each
	// state read costs a GVID hash plus map probes; the cache turns the
	// repeats into an equality check. Two slots with round-robin
	// replacement keep both sides of a binary join resident. Valid only
	// while the base is unchanged — run() resets it, and the engine never
	// mutates the base while a rule is matching.
	cacheV [2]term.GVID
	cacheS [2]*objectbase.State
	cacheN int // valid slots (0..2)
	cacheI int // next slot to evict
}

// stateFor returns the state of g (nil if absent), memoizing the last two
// lookups.
func (x *executor) stateFor(g term.GVID) *objectbase.State {
	for i := 0; i < x.cacheN; i++ {
		if x.cacheV[i] == g {
			return x.cacheS[i]
		}
	}
	s := x.readBase(g).StateOf(g)
	i := x.cacheI
	x.cacheV[i], x.cacheS[i] = g, s
	x.cacheI = i ^ 1
	if x.cacheN < 2 {
		x.cacheN++
	}
	return s
}

func newExecutor(base *objectbase.Base, idx *objectbase.LiteralIndex) *executor {
	return &executor{base: base, p0: base.Parent(), idx: idx}
}

// readBase returns the base to read version g's state from: the overlay
// parent directly for path-0 VIDs (never shadowed during a fixpoint), the
// full overlay otherwise.
func (x *executor) readBase(g term.GVID) *objectbase.Base {
	if x.p0 != nil && g.Path.Len() == 0 {
		return x.p0
	}
	return x.base
}

func (x *executor) getFrame(n int) []term.OID {
	if l := len(x.frames); l > 0 {
		fr := x.frames[l-1]
		x.frames = x.frames[:l-1]
		if cap(fr) >= n {
			fr = fr[:n]
			for i := range fr {
				fr[i] = term.OID{}
			}
			return fr
		}
	}
	return make([]term.OID, n)
}

func (x *executor) putFrame(fr []term.OID) { x.frames = append(x.frames, fr) }

func (x *executor) getVIDs() []term.GVID {
	if n := len(x.vids); n > 0 {
		buf := x.vids[n-1]
		x.vids = x.vids[:n-1]
		return buf
	}
	return nil
}

func (x *executor) putVIDs(buf []term.GVID) { x.vids = append(x.vids, buf[:0]) }

func (x *executor) getOIDs() []term.OID {
	if n := len(x.oids); n > 0 {
		buf := x.oids[n-1]
		x.oids = x.oids[:n-1]
		return buf
	}
	return nil
}

func (x *executor) putOIDs(buf []term.OID) { x.oids = append(x.oids, buf[:0]) }

func (x *executor) getKRs() []keyResult {
	if n := len(x.krs); n > 0 {
		buf := x.krs[n-1]
		x.krs = x.krs[:n-1]
		return buf
	}
	return nil
}

func (x *executor) putKRs(buf []keyResult) { x.krs = append(x.krs, buf[:0]) }

// run evaluates one compiled plan (the full steps or a delta variant) and
// fires the head for every complete body match. delta is the (path,
// method)-bucketed fact slice an accessDelta seed joins against.
func (x *executor) run(cr *compiledRule, steps []cstep, delta []term.Fact, matched *int64, onFire func(Update) error) error {
	x.cacheN, x.cacheI = 0, 0
	fr := x.getFrame(cr.nslots)
	defer x.putFrame(fr)
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(steps) {
			*matched++
			return x.fire(&cr.head, fr, onFire)
		}
		st := &steps[i]
		err := x.exec(st, fr, delta, func() error { return rec(i + 1) })
		for _, s := range st.bindSlots {
			fr[s] = term.OID{}
		}
		return err
	}
	return rec(0)
}

func (x *executor) exec(st *cstep, fr []term.OID, delta []term.Fact, k func() error) error {
	switch st.kind {
	case stepScan:
		return x.execScan(st, fr, delta, k)
	case stepDel:
		return x.execDel(st, fr, k)
	case stepMod:
		return x.execMod(st, fr, k)
	case stepBuiltin:
		return x.execBuiltin(st, fr, k)
	case stepNegVer:
		return x.execNegVer(st, fr, k)
	case stepNegAny:
		return x.execNegAny(st, fr, k)
	case stepNegDel, stepNegMod:
		return x.execNegUpd(st, fr, k)
	default:
		return fmt.Errorf("eval: unknown step kind %d", st.kind)
	}
}

// execScan enumerates a positive version pattern via the step's access.
func (x *executor) execScan(st *cstep, fr []term.OID, delta []term.Fact, k func() error) error {
	switch st.acc {
	case accessDelta:
		for i := range delta {
			f := &delta[i]
			if f.Method != st.method || f.V.Path != st.path {
				continue
			}
			if !st.base.match(fr, f.V.Object) {
				continue
			}
			if !x.matchFactArgs(st, fr, f.Args) {
				continue
			}
			if !st.result.match(fr, f.Result) {
				continue
			}
			if err := k(); err != nil {
				return err
			}
		}
		return nil

	case accessLookup:
		g := term.GVID{Object: st.base.value(fr), Path: st.path}
		return x.matchApp(st, fr, g, k)

	case accessProbeResult:
		r := st.result.value(fr)
		for _, g := range x.idx.VIDsWithResult(st.path, st.method, r) {
			if !st.base.match(fr, g.Object) {
				continue
			}
			if err := x.matchApp(st, fr, g, k); err != nil {
				return err
			}
		}
		return nil

	case accessProbeArg:
		a0 := st.args[0].value(fr)
		for _, g := range x.idx.VIDsWithArg(st.path, st.method, a0) {
			if !st.base.match(fr, g.Object) {
				continue
			}
			if err := x.matchApp(st, fr, g, k); err != nil {
				return err
			}
		}
		return nil

	case accessAny:
		cands := x.getVIDs()
		if st.base.mode != oBind {
			o := st.base.value(fr)
			x.base.ForEachVIDWithMethod(st.method, func(g term.GVID) {
				if g.Object == o {
					cands = append(cands, g)
				}
			})
		} else {
			x.base.ForEachVIDWithMethod(st.method, func(g term.GVID) { cands = append(cands, g) })
		}
		for _, g := range cands {
			if !st.base.match(fr, g.Object) {
				continue
			}
			if err := x.matchApp(st, fr, g, k); err != nil {
				x.putVIDs(cands)
				return err
			}
		}
		x.putVIDs(cands)
		return nil

	default: // accessScan
		cands := x.getVIDs()
		x.base.ForEachVIDWith(st.path, st.method, func(g term.GVID) { cands = append(cands, g) })
		for _, g := range cands {
			if !st.base.match(fr, g.Object) {
				continue
			}
			if err := x.matchApp(st, fr, g, k); err != nil {
				x.putVIDs(cands)
				return err
			}
		}
		x.putVIDs(cands)
		return nil
	}
}

// resolveKey resolves the step's method key against the frame. Every
// argument operand is a constant or a checked slot (callers only resolve
// keys when argsBind is false, or on negation/ground steps).
func (x *executor) resolveKey(keyStatic bool, key term.MethodKey, method string, args []operand, fr []term.OID) term.MethodKey {
	if keyStatic {
		return key
	}
	x.args = x.args[:0]
	for _, op := range args {
		x.args = append(x.args, op.value(fr))
	}
	return term.MethodKey{Method: method, Args: term.EncodeOIDs(x.args)}
}

// matchFactArgs unifies the step's argument operands with a fact's encoded
// tuple (delta joins).
func (x *executor) matchFactArgs(st *cstep, fr []term.OID, args term.Args) bool {
	if len(st.args) == 0 {
		return args.Empty()
	}
	vals := args.Decode()
	if len(vals) != len(st.args) {
		return false
	}
	for i, op := range st.args {
		if !op.match(fr, vals[i]) {
			return false
		}
	}
	return true
}

// matchApp enumerates matches of the step's application on the ground VID
// g — the compiled counterpart of matcher.matchApp.
func (x *executor) matchApp(st *cstep, fr []term.OID, g term.GVID, k func() error) error {
	return x.matchAppKR(st, fr, g, func(term.MethodKey, term.OID) error { return k() })
}

// matchAppKR is matchApp with the resolved key and result passed to the
// continuation (del/mod steps need them).
func (x *executor) matchAppKR(st *cstep, fr []term.OID, g term.GVID, k func(key term.MethodKey, r term.OID) error) error {
	s := x.stateFor(g)
	if s == nil {
		return nil
	}
	if !st.argsBind {
		key := x.resolveKey(st.keyStatic, st.key, st.method, st.args, fr)
		if st.result.mode != oBind {
			r := st.result.value(fr)
			if s.Has(key, r) {
				return k(key, r)
			}
			return nil
		}
		results := x.getOIDs()
		s.ForEachResult(key, func(r term.OID) { results = append(results, r) })
		for _, r := range results {
			fr[st.result.slot] = r
			if err := k(key, r); err != nil {
				x.putOIDs(results)
				return err
			}
		}
		x.putOIDs(results)
		return nil
	}
	// Arguments contain binding slots: scan all applications of the method
	// on g and unify per candidate.
	apps := x.getKRs()
	s.ForEachOfMethod(st.method, func(key term.MethodKey, r term.OID) {
		apps = append(apps, keyResult{key, r})
	})
	for _, a := range apps {
		if !x.matchFactArgs(st, fr, a.key.Args) {
			continue
		}
		if !st.result.match(fr, a.r) {
			continue
		}
		if err := k(a.key, a.r); err != nil {
			x.putKRs(apps)
			return err
		}
	}
	x.putKRs(apps)
	return nil
}

// execDel enumerates a positive del-term: del[v].m -> r holds iff
// v*.m -> r is in the base, del(v) exists, and del(v).m -> r is absent.
func (x *executor) execDel(st *cstep, fr []term.OID, k func() error) error {
	if st.acc == accessLookup {
		w := term.GVID{Object: st.base.value(fr), Path: st.tpath}
		return x.delOn(st, fr, w, k)
	}
	cands := x.getVIDs()
	x.base.ForEachVIDWith(st.tpath, term.ExistsMethod, func(g term.GVID) { cands = append(cands, g) })
	for _, w := range cands {
		if !st.base.match(fr, w.Object) {
			continue
		}
		if err := x.delOn(st, fr, w, k); err != nil {
			x.putVIDs(cands)
			return err
		}
	}
	x.putVIDs(cands)
	return nil
}

func (x *executor) delOn(st *cstep, fr []term.OID, w term.GVID, k func() error) error {
	if !x.base.Exists(w) {
		return nil
	}
	v := term.GVID{Object: w.Object, Path: w.Path[:w.Path.Len()-1]}
	vstar, ok := x.readBase(v).VStar(v)
	if !ok {
		return nil
	}
	return x.matchAppKR(st, fr, vstar, func(key term.MethodKey, r term.OID) error {
		if x.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: r}) {
			return nil
		}
		return k()
	})
}

// execMod enumerates a positive mod-term: mod[v].m -> (r, r') holds iff
// v*.m -> r is in the base, mod(v).m -> r' is in the base, and — when r
// differs from r' — mod(v).m -> r is absent.
func (x *executor) execMod(st *cstep, fr []term.OID, k func() error) error {
	if st.acc == accessLookup {
		w := term.GVID{Object: st.base.value(fr), Path: st.tpath}
		return x.modOn(st, fr, w, k)
	}
	cands := x.getVIDs()
	x.base.ForEachVIDWith(st.tpath, st.method, func(g term.GVID) { cands = append(cands, g) })
	for _, w := range cands {
		if !st.base.match(fr, w.Object) {
			continue
		}
		if err := x.modOn(st, fr, w, k); err != nil {
			x.putVIDs(cands)
			return err
		}
	}
	x.putVIDs(cands)
	return nil
}

func (x *executor) modOn(st *cstep, fr []term.OID, w term.GVID, k func() error) error {
	v := term.GVID{Object: w.Object, Path: w.Path[:w.Path.Len()-1]}
	vstar, ok := x.readBase(v).VStar(v)
	if !ok {
		return nil
	}
	return x.matchAppKR(st, fr, vstar, func(key term.MethodKey, r term.OID) error {
		newResults := x.getOIDs()
		x.base.ForEachResult(w, key, func(o term.OID) { newResults = append(newResults, o) })
		for _, rp := range newResults {
			if !st.newResult.match(fr, rp) {
				continue
			}
			if r != rp && x.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: r}) {
				continue
			}
			if err := k(); err != nil {
				x.putOIDs(newResults)
				return err
			}
		}
		x.putOIDs(newResults)
		return nil
	})
}

// execBuiltin evaluates a compiled comparison or binding equality.
func (x *executor) execBuiltin(st *cstep, fr []term.OID, k func() error) (err error) {
	defer term.RecoverOverflow(&err)
	if st.bindSlot >= 0 {
		v, verr := x.evalCexpr(st.rhs, fr)
		if verr != nil {
			return verr
		}
		fr[st.bindSlot] = v
		return k()
	}
	l, lerr := x.evalCexpr(st.lhs, fr)
	if lerr != nil {
		return lerr
	}
	r, rerr := x.evalCexpr(st.rhs, fr)
	if rerr != nil {
		return rerr
	}
	ok, cerr := builtin.Compare(st.cmp, l, r)
	if cerr != nil {
		return cerr
	}
	if ok != st.negate {
		return k()
	}
	return nil
}

func (x *executor) evalCexpr(e *cexpr, fr []term.OID) (term.OID, error) {
	switch e.kind {
	case ceConst:
		return e.c, nil
	case ceSlot:
		return fr[e.slot], nil
	case ceNeg:
		v, err := x.evalCexpr(e.l, fr)
		if err != nil {
			return term.OID{}, err
		}
		if !v.IsNum() {
			return term.OID{}, &builtin.TypeError{Op: "-", Operands: []term.OID{v}}
		}
		return term.FromRat(v.Rat().Neg()), nil
	default: // ceBin
		l, err := x.evalCexpr(e.l, fr)
		if err != nil {
			return term.OID{}, err
		}
		r, err := x.evalCexpr(e.r, fr)
		if err != nil {
			return term.OID{}, err
		}
		return builtin.ApplyArith(e.op, l, r)
	}
}

// execNegVer checks a negated (fully ground) version- or ins-term: the
// literal passes when the fact is absent.
func (x *executor) execNegVer(st *cstep, fr []term.OID, k func() error) error {
	g := term.GVID{Object: st.base.value(fr), Path: st.path}
	key := x.resolveKey(st.keyStatic, st.key, st.method, st.args, fr)
	if x.base.Has(term.Fact{V: g, Method: key.Method, Args: key.Args, Result: st.result.value(fr)}) {
		return nil
	}
	return k()
}

// execNegAny checks a negated any(...) pattern: the wildcard is
// existential, so the literal passes when no version of the object, at any
// path, carries the application.
func (x *executor) execNegAny(st *cstep, fr []term.OID, k func() error) error {
	o := st.base.value(fr)
	key := x.resolveKey(st.keyStatic, st.key, st.method, st.args, fr)
	r := st.result.value(fr)
	found := false
	x.base.ForEachVIDWithMethod(st.method, func(g term.GVID) {
		if found || g.Object != o {
			return
		}
		if x.base.Has(term.Fact{V: g, Method: key.Method, Args: key.Args, Result: r}) {
			found = true
		}
	})
	if found {
		return nil
	}
	return k()
}

// execNegUpd checks a negated (fully ground) del- or mod-term, mirroring
// the interpreter's groundUpdateTruth.
func (x *executor) execNegUpd(st *cstep, fr []term.OID, k func() error) error {
	v := term.GVID{Object: st.base.value(fr), Path: st.path}
	w := term.GVID{Object: v.Object, Path: st.tpath}
	key := x.resolveKey(st.keyStatic, st.key, st.method, st.args, fr)
	r := st.result.value(fr)
	truth := false
	switch st.kind {
	case stepNegDel:
		if vstar, ok := x.base.VStar(v); ok {
			truth = x.base.Has(term.Fact{V: vstar, Method: key.Method, Args: key.Args, Result: r}) &&
				x.base.Exists(w) &&
				!x.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: r})
		}
	default: // stepNegMod
		rp := st.newResult.value(fr)
		if vstar, ok := x.base.VStar(v); ok {
			truth = x.base.Has(term.Fact{V: vstar, Method: key.Method, Args: key.Args, Result: r}) &&
				x.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: rp}) &&
				!(r != rp && x.base.Has(term.Fact{V: w, Method: key.Method, Args: key.Args, Result: r}))
		}
	}
	if truth {
		return nil
	}
	return k()
}

// fire grounds the compiled head against the frame, applies the
// head-position truth definitions, and emits the resulting updates — the
// compiled counterpart of engine.fireHead.
func (x *executor) fire(h *chead, fr []term.OID, onFire func(Update) error) error {
	v := term.GVID{Object: h.base.value(fr), Path: h.path}
	if h.all {
		vstar, ok := x.base.VStar(v)
		if !ok {
			return nil
		}
		ups := x.ups[:0]
		x.base.ForEachFactOf(vstar, func(f term.Fact) {
			if f.IsExists() {
				return
			}
			ups = append(ups, Update{Kind: term.Del, V: v, Key: f.Key(), R: f.Result})
		})
		slices.SortFunc(ups, func(a, b Update) int { return a.compare(b) })
		x.ups = ups[:0]
		for _, u := range ups {
			if err := onFire(u); err != nil {
				return err
			}
		}
		return nil
		// x.ups keeps the grown capacity for the next delete-all head.
	}
	key := x.resolveKey(h.keyStatic, h.key, h.method, h.args, fr)
	res := h.result.value(fr)
	u := Update{Kind: h.kind, V: v, Key: key, R: res}
	switch h.kind {
	case term.Del, term.Mod:
		vstar, ok := x.readBase(v).VStar(v)
		if !ok {
			return nil
		}
		if !x.readBase(vstar).Has(term.Fact{V: vstar, Method: key.Method, Args: key.Args, Result: res}) {
			return nil
		}
		if h.kind == term.Mod {
			u.R2 = h.newResult.value(fr)
		}
	}
	return onFire(u)
}
