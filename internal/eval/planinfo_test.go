package eval

import (
	"strings"
	"testing"
)

func TestExplainPlans(t *testing.T) {
	ob := mustBase(t, `
a.isa -> item / val -> 1.
b.isa -> item / val -> 2.
c.isa -> item / val -> 3 / rare -> yes.
`)
	p := mustProgram(t, `
find: ins[X].hit -> yes <- X.isa -> item, X.rare -> yes, X.val -> V.
`)
	plans := ExplainPlans(ob, p, false)
	if len(plans) != 1 {
		t.Fatalf("plans = %v", plans)
	}
	rp := plans[0]
	if rp.Rule != "find" || len(rp.Literals) != 3 {
		t.Fatalf("plan = %+v", rp)
	}
	// Statistics: the rare literal (1 candidate) runs first.
	if !strings.Contains(rp.Literals[0], "rare") {
		t.Errorf("statistics plan starts with %q", rp.Literals[0])
	}
	if rp.Costs[0] != 2 { // 1 + index count 1
		t.Errorf("first cost = %d", rp.Costs[0])
	}
	// Static: source order, isa first.
	static := ExplainPlans(ob, p, true)
	if !strings.Contains(static[0].Literals[0], "isa") {
		t.Errorf("static plan starts with %q", static[0].Literals[0])
	}
	// Rendering includes the estimates.
	if out := rp.String(); !strings.Contains(out, "find:") || !strings.Contains(out, "(est") {
		t.Errorf("String = %s", out)
	}
}

func TestExplainPlansDeltaMarkers(t *testing.T) {
	ob := mustBase(t, `x.isa -> person / parents -> y. y.isa -> person.`)
	p := mustProgram(t, `
step: ins[X].anc -> P <- ins(X).isa -> person / anc -> A, A.isa -> person / parents -> P.
`)
	rp := ExplainPlans(ob, p, false)[0]
	deltas := 0
	for _, d := range rp.DeltaLiterals {
		if d {
			deltas++
		}
	}
	if deltas != 2 { // the two ins(X) literals
		t.Errorf("delta positions = %v", rp.DeltaLiterals)
	}
}

func TestPlanLiterals(t *testing.T) {
	ob := mustBase(t, `a.isa -> thing. b.isa -> thing. c.isa -> thing. c.rare -> yes.`)
	p := mustProgram(t, `
find: ins[X].hit -> R <- X.isa -> thing, X.rare -> R, !X.skip -> yes, R = yes.
`)
	lps := PlanLiterals(ob, p.Rules[0])
	if len(lps) != 4 {
		t.Fatalf("PlanLiterals = %+v", lps)
	}
	// The binding equality runs immediately; then the rare generator with
	// its index estimate; the isa scan follows bound (0 rows); the negation
	// runs once X is bound.
	if lps[0].Kind != KindFilter || lps[0].Source != 3 {
		t.Errorf("first = %+v", lps[0])
	}
	if lps[1].Kind != KindGenerator || !strings.Contains(lps[1].Literal, "rare") || lps[1].EstRows != 2 || lps[1].Source != 1 {
		t.Errorf("second = %+v", lps[1])
	}
	kinds := map[string]int{}
	for _, lp := range lps {
		kinds[lp.Kind]++
	}
	if kinds[KindGenerator] != 2 || kinds[KindNegation] != 1 || kinds[KindFilter] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	// Nil base selects the static planner: generators in source order
	// after the ready equality, isa first.
	static := PlanLiterals(nil, p.Rules[0])
	if !strings.Contains(static[1].Literal, "isa") || static[1].Source != 0 {
		t.Errorf("static second = %+v", static[1])
	}
}

// TestPlanLiteralsAgreesWithExplain pins ExplainPlans to its PlanLiterals
// underpinning: same order, same estimates, same delta markers.
func TestPlanLiteralsAgreesWithExplain(t *testing.T) {
	ob := mustBase(t, `x.isa -> person / parents -> y. y.isa -> person.`)
	p := mustProgram(t, `
step: ins[X].anc -> P <- ins(X).isa -> person / anc -> A, A.isa -> person / parents -> P.
`)
	rp := ExplainPlans(ob, p, false)[0]
	lps := PlanLiterals(ob, p.Rules[0])
	if len(lps) != len(rp.Literals) {
		t.Fatalf("length mismatch: %d vs %d", len(lps), len(rp.Literals))
	}
	for i, lp := range lps {
		if lp.Literal != rp.Literals[i] || lp.EstRows != rp.Costs[i] || lp.Delta != rp.DeltaLiterals[i] {
			t.Errorf("[%d] PlanLiterals %+v vs RulePlan (%q, %d, %v)",
				i, lp, rp.Literals[i], rp.Costs[i], rp.DeltaLiterals[i])
		}
	}
}
