package eval

import (
	"strings"
	"testing"
)

func TestExplainPlans(t *testing.T) {
	ob := mustBase(t, `
a.isa -> item / val -> 1.
b.isa -> item / val -> 2.
c.isa -> item / val -> 3 / rare -> yes.
`)
	p := mustProgram(t, `
find: ins[X].hit -> yes <- X.isa -> item, X.rare -> yes, X.val -> V.
`)
	plans := ExplainPlans(ob, p, false)
	if len(plans) != 1 {
		t.Fatalf("plans = %v", plans)
	}
	rp := plans[0]
	if rp.Rule != "find" || len(rp.Literals) != 3 {
		t.Fatalf("plan = %+v", rp)
	}
	// Statistics: the rare literal (1 candidate) runs first.
	if !strings.Contains(rp.Literals[0], "rare") {
		t.Errorf("statistics plan starts with %q", rp.Literals[0])
	}
	if rp.Costs[0] != 2 { // 1 + index count 1
		t.Errorf("first cost = %d", rp.Costs[0])
	}
	// Static: source order, isa first.
	static := ExplainPlans(ob, p, true)
	if !strings.Contains(static[0].Literals[0], "isa") {
		t.Errorf("static plan starts with %q", static[0].Literals[0])
	}
	// Rendering includes the estimates.
	if out := rp.String(); !strings.Contains(out, "find:") || !strings.Contains(out, "(est") {
		t.Errorf("String = %s", out)
	}
}

func TestExplainPlansDeltaMarkers(t *testing.T) {
	ob := mustBase(t, `x.isa -> person / parents -> y. y.isa -> person.`)
	p := mustProgram(t, `
step: ins[X].anc -> P <- ins(X).isa -> person / anc -> A, A.isa -> person / parents -> P.
`)
	rp := ExplainPlans(ob, p, false)[0]
	deltas := 0
	for _, d := range rp.DeltaLiterals {
		if d {
			deltas++
		}
	}
	if deltas != 2 { // the two ins(X) literals
		t.Errorf("delta positions = %v", rp.DeltaLiterals)
	}
}
