package eval

import (
	"strings"
	"testing"

	"verlog/internal/obs"
)

// TestRuleStatsSumToFired pins the attribution invariant the tracing
// surfaces rely on: every distinct fired update is attributed to exactly
// one rule, so the per-rule Fired counts sum to Result.Fired.
func TestRuleStatsSumToFired(t *testing.T) {
	for _, strategy := range []Strategy{Naive, SemiNaive} {
		t.Run(strategy.String(), func(t *testing.T) {
			ob := mustBase(t, enterpriseBase)
			res := mustRun(t, ob, mustProgram(t, enterpriseProgram), Options{Strategy: strategy})
			if len(res.RuleStats) != 4 {
				t.Fatalf("rule stats = %+v, want one per rule", res.RuleStats)
			}
			sum := 0
			for _, rs := range res.RuleStats {
				sum += rs.Fired
				if rs.Emitted < rs.Fired {
					t.Errorf("rule %s emitted %d < fired %d", rs.Rule, rs.Emitted, rs.Fired)
				}
				// No matched-vs-emitted invariant: a single del[v].* body
				// match expands into one delete per method application.
				if rs.Matched < 1 {
					t.Errorf("rule %s matched %d, want >= 1", rs.Rule, rs.Matched)
				}
				if rs.Stratum < 1 || rs.Iterations < 1 {
					t.Errorf("rule %s stratum %d iterations %d, want >= 1", rs.Rule, rs.Stratum, rs.Iterations)
				}
			}
			if sum != res.Fired {
				t.Errorf("sum of per-rule fired = %d, want Result.Fired = %d", sum, res.Fired)
			}
			// Hottest-first: times never increase.
			for i := 1; i < len(res.RuleStats); i++ {
				if res.RuleStats[i].TimeUS > res.RuleStats[i-1].TimeUS {
					t.Errorf("rule stats not sorted by time: %+v", res.RuleStats)
				}
			}
		})
	}
}

// TestRuleStatsMatchParallel verifies the deterministic counts are
// identical with and without worker parallelism.
func TestRuleStatsMatchParallel(t *testing.T) {
	seq := mustRun(t, mustBase(t, enterpriseBase), mustProgram(t, enterpriseProgram), Options{})
	par := mustRun(t, mustBase(t, enterpriseBase), mustProgram(t, enterpriseProgram), Options{Parallelism: 4})
	counts := func(res *Result) map[string][3]int {
		m := make(map[string][3]int)
		for _, rs := range res.RuleStats {
			m[rs.Rule] = [3]int{rs.Fired, rs.Emitted, rs.Matched}
		}
		return m
	}
	cs, cp := counts(seq), counts(par)
	for rule, want := range cs {
		if cp[rule] != want {
			t.Errorf("rule %s: parallel counts %v, sequential %v", rule, cp[rule], want)
		}
	}
}

// TestSpanTreeShape runs with a Span and checks the advertised node
// hierarchy: stratify and copy under the root, stratum → iteration →
// rule, and per-rule fired attrs that agree with RuleStats.
func TestSpanTreeShape(t *testing.T) {
	tr := obs.NewTrace("apply")
	ob := mustBase(t, enterpriseBase)
	res := mustRun(t, ob, mustProgram(t, enterpriseProgram), Options{Span: tr.Root})
	tr.Finish()

	names := make(map[string]int)
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		names[strings.SplitN(s.Name, " ", 2)[0]]++
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	if names["stratify"] != 1 || names["copy"] != 1 {
		t.Errorf("span kinds = %v, want one stratify and one copy", names)
	}
	if names["stratum"] != len(res.Iterations) {
		t.Errorf("stratum spans = %d, want %d", names["stratum"], len(res.Iterations))
	}
	wantIters := 0
	for _, n := range res.Iterations {
		wantIters += n
	}
	if names["iteration"] != wantIters {
		t.Errorf("iteration spans = %d, want %d", names["iteration"], wantIters)
	}
	if names["rule"] == 0 {
		t.Error("no rule spans recorded")
	}

	// Sum the fired attr across rule spans: must equal Result.Fired.
	firedSum := int64(0)
	var sumFired func(s *obs.Span)
	sumFired = func(s *obs.Span) {
		if strings.HasPrefix(s.Name, "rule ") {
			for _, a := range s.Attrs {
				if a.Key == "fired" {
					firedSum += a.Value.(int64)
				}
			}
		}
		for _, c := range s.Children {
			sumFired(c)
		}
	}
	sumFired(tr.Root)
	if firedSum != int64(res.Fired) {
		t.Errorf("fired attrs sum to %d, want %d", firedSum, res.Fired)
	}

	// The span path reaches rule level: stratum → iteration → rule.
	found := false
	for _, st := range tr.Root.Children {
		if !strings.HasPrefix(st.Name, "stratum") {
			continue
		}
		for _, it := range st.Children {
			if !strings.HasPrefix(it.Name, "iteration") {
				t.Errorf("stratum child %q, want iteration", it.Name)
			}
			for _, r := range it.Children {
				if strings.HasPrefix(r.Name, "rule ") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no stratum → iteration → rule path in span tree")
	}
}

// TestSpanNilIsUnchanged checks a traced and an untraced run compute the
// same fixpoint and the same rule stats.
func TestSpanNilIsUnchanged(t *testing.T) {
	tr := obs.NewTrace("apply")
	plain := mustRun(t, mustBase(t, enterpriseBase), mustProgram(t, enterpriseProgram), Options{})
	traced := mustRun(t, mustBase(t, enterpriseBase), mustProgram(t, enterpriseProgram), Options{Span: tr.Root})
	if plain.Fired != traced.Fired || len(plain.RuleStats) != len(traced.RuleStats) {
		t.Errorf("traced run diverged: fired %d vs %d", plain.Fired, traced.Fired)
	}
	byRule := make(map[string]RuleStat)
	for _, rs := range plain.RuleStats {
		byRule[rs.Rule] = rs
	}
	for _, b := range traced.RuleStats {
		a := byRule[b.Rule]
		if a.Fired != b.Fired || a.Emitted != b.Emitted || a.Matched != b.Matched {
			t.Errorf("rule %s stats diverged: %+v vs %+v", b.Rule, a, b)
		}
	}
}
