package eval

import (
	"sync"
	"testing"
)

// TestConcurrentRunSharedBase runs many evaluations concurrently against
// one frozen input base. Each Run builds its own overlays but shares the
// parent's lazily built literal index and VID index through the p0
// read-base shortcut — exactly what the repository does when concurrent
// applies race on one published head. Under -race this checks the shared
// read paths of the compiled executor end to end.
func TestConcurrentRunSharedBase(t *testing.T) {
	base := mustBase(t, `
		e1.isa -> emp.  e1.sal -> 1000.  e1.dept -> d1.
		e2.isa -> emp.  e2.sal -> 2000.  e2.dept -> d1.
		e3.isa -> emp.  e3.sal -> 3000.  e3.dept -> d2.
		d1.isa -> dept. d2.isa -> dept.
	`)
	frozen := base.Freeze()
	p := mustProgram(t, `
		raise: ins[X].sal -> S2 <- X.isa -> emp, X.sal -> S, S2 = S + 500.
		peers: ins[X].peer -> Y <- X.dept -> D, Y.dept -> D, X != Y.
	`)
	cp, err := Compile(frozen, p, false)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				// Alternate plan sources: half the runs compile privately,
				// half reuse the shared pre-compiled plans (the repository
				// plan cache hands one *CompiledProgram to many appliers).
				opts := Options{}
				if (g+round)%2 == 0 {
					opts.Plans = cp
				}
				res, err := Run(frozen, p, opts)
				if err != nil {
					t.Errorf("Run: %v", err)
					return
				}
				if res.Fired != 5 { // 3 raises + 2 peer facts
					t.Errorf("Fired = %d, want 5", res.Fired)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
