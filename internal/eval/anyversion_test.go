package eval

import (
	"strings"
	"testing"

	"verlog/internal/parser"
	"verlog/internal/safety"
	"verlog/internal/term"
)

func safetyProgram(p *term.Program) error { return safety.Program(p) }

// The any(...) version wildcard (extension; see DESIGN.md): existential
// quantification over an object's versions, in queries and derived rules
// only.

func anyVersionFixture(t *testing.T) *Result {
	t.Helper()
	ob := mustBase(t, enterpriseBase)
	return mustRun(t, ob, mustProgram(t, enterpriseProgram), Options{})
}

func TestAnyVersionQuery(t *testing.T) {
	res := anyVersionFixture(t)
	// "Which salaries did bob ever have, at any stage?"
	lits, err := parser.Query(`any(bob).sal -> S.`, "q")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bs, err := Query(res.Result, lits)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	got := make([]string, len(bs))
	for i, b := range bs {
		got[i] = b.String()
	}
	want := "S=4200 | S=4620"
	if strings.Join(got, " | ") != want {
		t.Errorf("bindings = %v, want %s", got, want)
	}
}

func TestAnyVersionUnboundBase(t *testing.T) {
	res := anyVersionFixture(t)
	// "Which objects ever had a salary above 4600, at any stage?"
	lits, _ := parser.Query(`any(E).sal -> S, S > 4600.`, "q")
	bs, err := Query(res.Result, lits)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(bs) != 1 || bs[0].String() != "E=bob, S=4620" {
		t.Errorf("bindings = %v", bs)
	}
}

func TestAnyVersionNegated(t *testing.T) {
	res := anyVersionFixture(t)
	// Employees never classified hpe at any stage: bob only.
	lits, _ := parser.Query(`E.isa -> empl, !any(E).isa -> hpe.`, "q")
	bs, err := Query(res.Result, lits)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(bs) != 1 || bs[0].String() != "E=bob" {
		t.Errorf("bindings = %v", bs)
	}
}

func TestAnyVersionRejectedInUpdateRules(t *testing.T) {
	// In update-terms the parser rejects it outright.
	_, err := parser.Program(`r: ins[any(X)].m -> a <- X.t -> 1.`, "p")
	if err == nil || !strings.Contains(err.Error(), "any(...)") {
		t.Errorf("update-term wildcard: err = %v", err)
	}
	// In update-rule bodies the parser accepts the syntax; safety rejects.
	p, err := parser.Program(`r: ins[X].m -> a <- any(X).t -> 1.`, "p")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := safetyProgram(p); err == nil || !strings.Contains(err.Error(), "any(...)") {
		t.Errorf("body wildcard: err = %v", err)
	}
}

func TestAnyVersionCannotNest(t *testing.T) {
	for _, src := range []string{
		`mod(any(X)).m -> R.`,
		`any(any(X)).m -> R.`,
		`any(mod(X)).m -> R.`,
	} {
		if _, err := parser.Query(src, "q"); err == nil {
			t.Errorf("nested wildcard accepted: %s", src)
		}
	}
}
