package eval

import (
	"fmt"
	"strings"

	"verlog/internal/objectbase"
	"verlog/internal/term"
)

// Literal-plan kinds.
const (
	KindGenerator = "generator" // positive version-/update-term enumerating candidates
	KindFilter    = "filter"    // built-in comparison or binding equality
	KindNegation  = "negation"  // negated literal, checked once variables are bound
)

// LiteralPlan describes one body literal in the planner's join order: what
// it is, where it came from in the source body, how many candidates the
// planner expects it to enumerate, and whether semi-naive iteration seeds
// joins from it.
type LiteralPlan struct {
	Literal string `json:"literal"`
	Source  int    `json:"source"` // index in the source body
	Kind    string `json:"kind"`
	EstRows int    `json:"est_rows"` // 0 for filters, negations, bound-base lookups
	Delta   bool   `json:"delta"`    // semi-naive delta-seedable position
}

// PlanLiterals reports the join order the statistics planner picks for r's
// body against base, with the same per-literal cardinality estimates the
// planner used. A nil base selects the source-order static planner. This
// is the machine-readable form the analysis cost model and the future
// compiled-match-plan work consume.
func PlanLiterals(base *objectbase.Base, r term.Rule) []LiteralPlan {
	est := staticCost
	if base != nil {
		est = statsCost(base)
	}
	return planLiterals(r, est)
}

func planLiterals(r term.Rule, est costEstimator) []LiteralPlan {
	pl := planRuleCost(r, est)
	delta := map[int]bool{}
	for _, pos := range pl.deltaPositions {
		delta[pos] = true
	}
	out := make([]LiteralPlan, 0, len(pl.order))
	// Recompute per-literal estimates in plan order, tracking bound
	// variables exactly as the planner does.
	bound := map[term.Var]bool{}
	for pos, li := range pl.order {
		l := r.Body[li]
		lp := LiteralPlan{Literal: l.String(), Source: li, Delta: delta[pos]}
		switch {
		case l.Neg:
			lp.Kind = KindNegation
		case isBuiltin(l):
			lp.Kind = KindFilter
		default:
			lp.Kind = KindGenerator
			lp.EstRows = est(l, baseBound(l, bound))
		}
		out = append(out, lp)
		for _, v := range binds(l) {
			bound[v] = true
		}
	}
	return out
}

// RulePlan describes how the engine will evaluate one rule's body: the
// literal order the planner chose and, for semi-naive iteration, which
// positions are delta-seedable. It exists for the "verlog plan" command
// and the planner ablation; the engine recomputes plans per stratum, so
// this is the stratum-1 view of the given base.
type RulePlan struct {
	Rule string
	// Literals holds the body literals in evaluation order.
	Literals []string
	// Costs holds the planner's cardinality estimate per literal, aligned
	// with Literals (0 for filters and bound-base lookups).
	Costs []int
	// DeltaLiterals marks, aligned with Literals, the positions semi-naive
	// iteration seeds from.
	DeltaLiterals []bool
}

// String renders the plan compactly.
func (rp RulePlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", rp.Rule)
	for i, l := range rp.Literals {
		marker := " "
		if rp.DeltaLiterals[i] {
			marker = "Δ"
		}
		fmt.Fprintf(&b, "  %d. %s %-40s (est %d)\n", i+1, marker, l, rp.Costs[i])
	}
	return b.String()
}

// ExplainPlans reports the evaluation order the statistics planner picks
// for every rule of p against the given base (set static to see the
// source-order planner instead).
func ExplainPlans(base *objectbase.Base, p *term.Program, static bool) []RulePlan {
	est := statsCost(base)
	if static {
		est = staticCost
	}
	out := make([]RulePlan, 0, len(p.Rules))
	for ri, r := range p.Rules {
		rp := RulePlan{Rule: r.Label(ri)}
		for _, lp := range planLiterals(r, est) {
			rp.Literals = append(rp.Literals, lp.Literal)
			rp.Costs = append(rp.Costs, lp.EstRows)
			rp.DeltaLiterals = append(rp.DeltaLiterals, lp.Delta)
		}
		out = append(out, rp)
	}
	return out
}
