package eval

import (
	"fmt"
	"strings"

	"verlog/internal/objectbase"
	"verlog/internal/term"
)

// RulePlan describes how the engine will evaluate one rule's body: the
// literal order the planner chose and, for semi-naive iteration, which
// positions are delta-seedable. It exists for the "verlog plan" command
// and the planner ablation; the engine recomputes plans per stratum, so
// this is the stratum-1 view of the given base.
type RulePlan struct {
	Rule string
	// Literals holds the body literals in evaluation order.
	Literals []string
	// Costs holds the planner's cardinality estimate per literal, aligned
	// with Literals (0 for filters and bound-base lookups).
	Costs []int
	// DeltaLiterals marks, aligned with Literals, the positions semi-naive
	// iteration seeds from.
	DeltaLiterals []bool
}

// String renders the plan compactly.
func (rp RulePlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", rp.Rule)
	for i, l := range rp.Literals {
		marker := " "
		if rp.DeltaLiterals[i] {
			marker = "Δ"
		}
		fmt.Fprintf(&b, "  %d. %s %-40s (est %d)\n", i+1, marker, l, rp.Costs[i])
	}
	return b.String()
}

// ExplainPlans reports the evaluation order the statistics planner picks
// for every rule of p against the given base (set static to see the
// source-order planner instead).
func ExplainPlans(base *objectbase.Base, p *term.Program, static bool) []RulePlan {
	est := statsCost(base)
	if static {
		est = staticCost
	}
	out := make([]RulePlan, 0, len(p.Rules))
	for ri, r := range p.Rules {
		pl := planRuleCost(r, est)
		rp := RulePlan{Rule: r.Label(ri)}
		// Recompute per-literal estimates in plan order, tracking bound
		// variables exactly as the planner does.
		bound := map[term.Var]bool{}
		delta := map[int]bool{}
		for _, pos := range pl.deltaPositions {
			delta[pos] = true
		}
		for pos, li := range pl.order {
			l := r.Body[li]
			cost := 0
			if !l.Neg && !isBuiltin(l) {
				cost = est(l, baseBound(l, bound))
			}
			rp.Literals = append(rp.Literals, l.String())
			rp.Costs = append(rp.Costs, cost)
			rp.DeltaLiterals = append(rp.DeltaLiterals, delta[pos])
			for _, v := range binds(l) {
				bound[v] = true
			}
		}
		out = append(out, rp)
	}
	return out
}
