package eval

import (
	"fmt"
	"strings"

	"verlog/internal/objectbase"
	"verlog/internal/term"
)

// Literal-plan kinds.
const (
	KindGenerator = "generator" // positive version-/update-term enumerating candidates
	KindFilter    = "filter"    // built-in comparison or binding equality
	KindNegation  = "negation"  // negated literal, checked once variables are bound
)

// Literal access paths: how a compiled generator step enumerates its
// candidates (see compile.go).
const (
	AccessLookup      = "lookup"       // version base bound: single-VID lookup
	AccessProbeResult = "probe-result" // literal-index probe on (path, method, result)
	AccessProbeArg    = "probe-arg"    // literal-index probe on (path, method, first arg)
	AccessScan        = "scan"         // (path, method) population scan
	AccessAnyScan     = "scan-any"     // any(...) wildcard: scan across all paths
	AccessDelta       = "delta"        // semi-naive join against the iteration delta
)

// LiteralPlan describes one body literal in the planner's join order: what
// it is, where it came from in the source body, how it will be accessed,
// how many candidates the planner expects it to enumerate, and whether
// semi-naive iteration seeds joins from it.
type LiteralPlan struct {
	Literal string `json:"literal"`
	Source  int    `json:"source"` // index in the source body
	Kind    string `json:"kind"`
	// Access is the compiled access path ("" for filters and negations).
	Access  string `json:"access,omitempty"`
	EstRows int    `json:"est_rows"` // 0 for filters, negations, bound-base lookups
	Delta   bool   `json:"delta"`    // semi-naive delta-seedable position
	// DeltaRows is the planner's estimate for this literal when it runs as
	// the delta seed of a semi-naive iteration (0 for non-seedable
	// literals). Iterations ≥ 2 see delta-sized inputs, not the full
	// population EstRows reports.
	DeltaRows int `json:"delta_rows,omitempty"`
}

// literalAccess reports the access path a compiled plan uses for a positive
// generator literal given the variables bound before it runs — the same
// decision compilePattern makes, made statically for plan reporting.
func literalAccess(l term.Literal, bound map[term.Var]bool) string {
	ground := func(t term.ObjTerm) bool {
		switch x := t.(type) {
		case term.OID:
			return true
		case term.Var:
			return bound[x]
		default:
			return false
		}
	}
	switch a := l.Atom.(type) {
	case term.VersionAtom:
		switch {
		case a.V.Any:
			return AccessAnyScan
		case ground(a.V.Base):
			return AccessLookup
		case a.V.Path.Len() == 0 && ground(a.App.Result):
			return AccessProbeResult
		case a.V.Path.Len() == 0 && len(a.App.Args) > 0 && ground(a.App.Args[0]):
			return AccessProbeArg
		default:
			return AccessScan
		}
	case term.UpdateAtom:
		// Update-terms address pushed paths (length ≥ 1), which the
		// literal index never covers.
		if a.V.Any {
			return AccessAnyScan
		}
		if ground(a.V.Base) {
			return AccessLookup
		}
		return AccessScan
	default:
		return ""
	}
}

// PlanLiterals reports the join order the statistics planner picks for r's
// body against base, with the same per-literal cardinality estimates the
// planner used — index selectivity included, since the compiled plans
// probe the base's literal index. A nil base selects the source-order
// static planner. This is the machine-readable form the analysis cost
// model and verlog explain-plan consume.
func PlanLiterals(base *objectbase.Base, r term.Rule) []LiteralPlan {
	est := staticCost
	if base != nil {
		est = indexedCost(base, base.Index())
	}
	return planLiterals(r, est)
}

func planLiterals(r term.Rule, est costEstimator) []LiteralPlan {
	pl := planRuleCost(r, est)
	delta := map[int]bool{}
	for _, pos := range pl.deltaPositions {
		delta[pos] = true
	}
	out := make([]LiteralPlan, 0, len(pl.order))
	// Recompute per-literal estimates in plan order, tracking bound
	// variables exactly as the planner does.
	bound := map[term.Var]bool{}
	for pos, li := range pl.order {
		l := r.Body[li]
		lp := LiteralPlan{Literal: l.String(), Source: li, Delta: delta[pos]}
		switch {
		case l.Neg:
			lp.Kind = KindNegation
		case isBuiltin(l):
			lp.Kind = KindFilter
		default:
			lp.Kind = KindGenerator
			lp.Access = literalAccess(l, bound)
			lp.EstRows = est(l, baseBound(l, bound))
			if delta[pos] {
				// Semi-naive iterations join this literal against the
				// per-iteration delta, not the full population.
				lp.DeltaRows = deltaRowEstimate(lp.EstRows)
			}
		}
		out = append(out, lp)
		for _, v := range binds(l) {
			bound[v] = true
		}
	}
	return out
}

// RulePlan describes how the engine will evaluate one rule's body: the
// literal order the planner chose, the access path per literal, and, for
// semi-naive iteration, which positions are delta-seedable.
type RulePlan struct {
	Rule string
	// Literals holds the body literals in evaluation order.
	Literals []string
	// Access holds the compiled access path per literal, aligned with
	// Literals ("" for filters and negations).
	Access []string
	// Costs holds the planner's cardinality estimate per literal, aligned
	// with Literals (0 for filters and bound-base lookups).
	Costs []int
	// DeltaLiterals marks, aligned with Literals, the positions semi-naive
	// iteration seeds from.
	DeltaLiterals []bool
}

// String renders the plan compactly.
func (rp RulePlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", rp.Rule)
	for i, l := range rp.Literals {
		marker := " "
		if rp.DeltaLiterals[i] {
			marker = "Δ"
		}
		access := rp.Access[i]
		if access == "" {
			access = "-"
		}
		fmt.Fprintf(&b, "  %d. %s %-40s %-12s (est %d)\n", i+1, marker, l, access, rp.Costs[i])
	}
	return b.String()
}

// HasIndexProbe reports whether any literal of the plan executes as an
// index probe or bound-base lookup (as opposed to a population scan).
func (rp RulePlan) HasIndexProbe() bool {
	for _, a := range rp.Access {
		switch a {
		case AccessLookup, AccessProbeResult, AccessProbeArg:
			return true
		}
	}
	return false
}

// ExplainPlans reports the evaluation order the statistics planner picks
// for every rule of p against the given base (set static to see the
// source-order planner instead), with index selectivity folded in exactly
// as compilation does.
func ExplainPlans(base *objectbase.Base, p *term.Program, static bool) []RulePlan {
	est := indexedCost(base, base.Index())
	if static {
		est = staticCost
	}
	out := make([]RulePlan, 0, len(p.Rules))
	for ri, r := range p.Rules {
		rp := RulePlan{Rule: r.Label(ri)}
		for _, lp := range planLiterals(r, est) {
			rp.Literals = append(rp.Literals, lp.Literal)
			rp.Access = append(rp.Access, lp.Access)
			rp.Costs = append(rp.Costs, lp.EstRows)
			rp.DeltaLiterals = append(rp.DeltaLiterals, lp.Delta)
		}
		out = append(out, rp)
	}
	return out
}
