package eval

import (
	"sort"
	"strings"

	"verlog/internal/objectbase"
	"verlog/internal/term"
	"verlog/internal/unify"
)

// Binding is one answer to a query: the bindings of the query's variables.
type Binding map[term.Var]term.OID

// String renders the binding deterministically, e.g. "E=phil, S=4600".
func (b Binding) String() string {
	keys := make([]string, 0, len(b))
	for v := range b {
		keys = append(keys, string(v))
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + b[term.Var(k)].String()
	}
	return strings.Join(parts, ", ")
}

// Query evaluates a conjunction of body literals against an object base
// (typically a fixpoint result, where every derived version is visible, or
// a finalized base) and returns the distinct variable bindings, sorted.
// Section 2.2 notes that "during an evaluation of an update-program all
// versions created during that evaluation can be used to derive the
// desired method values" — Query is that facility.
func Query(base *objectbase.Base, body []term.Literal) ([]Binding, error) {
	rule := term.Rule{Body: body, Name: "query"}
	pl := planRule(rule)
	m := newMatcher(base)
	vars := rule.Vars()

	seen := map[string]bool{}
	var out []Binding
	s := unify.Subst{}
	var tr unify.Trail
	var rec func(step int) error
	rec = func(step int) error {
		if step == len(pl.order) {
			// Materialize the answer now: the shared substitution is
			// rolled back as matching backtracks.
			b := Binding{}
			for v := range vars {
				if o, ok := s.Lookup(v); ok {
					b[v] = o
				}
			}
			key := b.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, b)
			}
			return nil
		}
		return m.matchLiteral(body[pl.order[step]], s, &tr, func() error {
			return rec(step + 1)
		})
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}
