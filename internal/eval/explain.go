package eval

import (
	"fmt"
	"strings"

	"verlog/internal/term"
)

// Explanation tells where a fact in the fixpoint came from: the update
// that put it there, or the copy chain that carried it forward from an
// earlier version, or the input object base.
type Explanation struct {
	// Fact is the fact being explained.
	Fact term.Fact
	// Kind classifies the provenance.
	Kind ProvenanceKind
	// Event is the fired update that produced the fact (for
	// ProvenanceUpdate) or that created the version which copied it (for
	// ProvenanceCopy).
	Event *TraceEvent
	// CopiedFrom is the version the fact was inherited from, for
	// ProvenanceCopy; walking explanations of CopiedFrom yields the full
	// chain back to the input base.
	CopiedFrom term.GVID
}

// ProvenanceKind classifies an explanation.
type ProvenanceKind uint8

const (
	// ProvenanceInput: the fact is part of the input object base (or the
	// seeded exists method).
	ProvenanceInput ProvenanceKind = iota
	// ProvenanceUpdate: an insert or the new half of a modify put it there.
	ProvenanceUpdate
	// ProvenanceCopy: it was inherited when the version's state was copied
	// from its predecessor (the frame behaviour of step 2 of T_P).
	ProvenanceCopy
	// ProvenanceUnknown: the fact is not in the result, or the run was not
	// traced.
	ProvenanceUnknown
)

func (k ProvenanceKind) String() string {
	switch k {
	case ProvenanceInput:
		return "input"
	case ProvenanceUpdate:
		return "update"
	case ProvenanceCopy:
		return "copy"
	default:
		return "unknown"
	}
}

// String renders the explanation for humans.
func (e Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ", e.Fact)
	switch e.Kind {
	case ProvenanceInput:
		b.WriteString("from the input object base")
	case ProvenanceUpdate:
		fmt.Fprintf(&b, "produced by %s (rule %s, stratum %d)",
			e.Event.Update, e.Event.Rule, e.Event.Stratum+1)
	case ProvenanceCopy:
		fmt.Fprintf(&b, "inherited from %s", e.CopiedFrom)
		if e.Event != nil {
			fmt.Fprintf(&b, " when rule %s performed %s", e.Event.Rule, e.Event.Update)
		}
	default:
		b.WriteString("not derivable from this run")
	}
	return b.String()
}

// Explain reconstructs the provenance of a fact from a traced run
// (Options.Trace must have been set). For version facts it distinguishes
// updates that created the fact from frame copies that carried it in; for
// copies, CopiedFrom names the predecessor so the chain can be walked back
// to the input base.
func (r *Result) Explain(f term.Fact) Explanation {
	out := Explanation{Fact: f, Kind: ProvenanceUnknown}
	if r.Result == nil || !r.Result.Has(f) {
		return out
	}
	if f.V.IsObject() {
		out.Kind = ProvenanceInput
		return out
	}
	// An update that directly produced the fact?
	for i := range r.Trace {
		ev := &r.Trace[i]
		u := ev.Update
		if u.Target() != f.V || u.Key.Method != f.Method || u.Key.Args != f.Args {
			continue
		}
		switch u.Kind {
		case term.Ins:
			if u.R == f.Result {
				out.Kind, out.Event = ProvenanceUpdate, ev
				return out
			}
		case term.Mod:
			if u.R2 == f.Result {
				out.Kind, out.Event = ProvenanceUpdate, ev
				return out
			}
		}
	}
	// Otherwise the fact was copied from the version's predecessor (v* at
	// creation time). Find the earliest update that created this version.
	var creator *TraceEvent
	for i := range r.Trace {
		ev := &r.Trace[i]
		if ev.Update.Target() == f.V {
			creator = ev
			break
		}
	}
	out.Kind = ProvenanceCopy
	out.Event = creator
	out.CopiedFrom = copySource(r, f)
	return out
}

// copySource finds the nearest shallower version of the object that also
// holds the method application — the version the copy chain inherited it
// from.
func copySource(r *Result, f term.Fact) term.GVID {
	for i := f.V.Path.Len() - 1; i >= 0; i-- {
		cand := term.GVID{Object: f.V.Object, Path: f.V.Path[:i]}
		if r.Result.Has(f.WithV(cand)) {
			return cand
		}
	}
	return term.GVID{Object: f.V.Object}
}
