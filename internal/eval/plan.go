// Package eval implements the bottom-up evaluation of update-programs:
// the truth relations of Section 3, the three-step immediate consequence
// operator T_P, stratum-wise naive and semi-naive fixpoint iteration
// (Section 4), the version-linearity run-time check and the construction
// of the updated object base (Section 5).
package eval

import (
	"verlog/internal/objectbase"
	"verlog/internal/term"
)

// plan is a per-rule evaluation order for body literals, computed once.
// The order guarantees that negated literals and comparisons are evaluated
// only when their variables are bound, which safe rules always allow.
type plan struct {
	order []int
	// deltaPositions lists positions (into order) of positive literals
	// whose facts can change within a stratum: version-terms over non-
	// empty-path VIDs and ins-update-terms. Semi-naive evaluation seeds
	// joins from these positions. Positions refer to the reordered body.
	deltaPositions []int
}

// binds returns the variables a positive occurrence of the literal binds.
func binds(l term.Literal) []term.Var {
	if l.Neg {
		return nil
	}
	var out []term.Var
	add := func(t term.ObjTerm) {
		if v, ok := t.(term.Var); ok {
			out = append(out, v)
		}
	}
	switch a := l.Atom.(type) {
	case term.VersionAtom:
		add(a.V.Base)
		for _, arg := range a.App.Args {
			add(arg)
		}
		add(a.App.Result)
	case term.UpdateAtom:
		add(a.V.Base)
		for _, arg := range a.App.Args {
			add(arg)
		}
		add(a.App.Result)
		if a.NewResult != nil {
			add(a.NewResult)
		}
	case term.BuiltinAtom:
		if a.Op != term.OpEq {
			return nil
		}
		// X = expr binds X (in either direction); the planner checks
		// separately that the other side is evaluable.
		if v, ok := a.L.(term.VarExpr); ok {
			out = append(out, v.V)
		}
		if v, ok := a.R.(term.VarExpr); ok {
			out = append(out, v.V)
		}
	}
	return out
}

// needs returns the variables that must be bound before the literal can be
// evaluated as a filter (negated literal or comparison), or nil when the
// literal can generate bindings itself.
func needs(l term.Literal) []term.Var {
	collect := func(a term.Atom) []term.Var {
		var out []term.Var
		add := func(t term.ObjTerm) {
			if v, ok := t.(term.Var); ok {
				out = append(out, v)
			}
		}
		switch x := a.(type) {
		case term.VersionAtom:
			add(x.V.Base)
			for _, arg := range x.App.Args {
				add(arg)
			}
			add(x.App.Result)
		case term.UpdateAtom:
			add(x.V.Base)
			for _, arg := range x.App.Args {
				add(arg)
			}
			add(x.App.Result)
			if x.NewResult != nil {
				add(x.NewResult)
			}
		case term.BuiltinAtom:
			return term.ExprVars(x.R, term.ExprVars(x.L, nil))
		}
		return out
	}
	if l.Neg {
		return collect(l.Atom)
	}
	if b, ok := l.Atom.(term.BuiltinAtom); ok {
		return term.ExprVars(b.R, term.ExprVars(b.L, nil))
	}
	return nil // positive version-/update-terms can always generate
}

// filterReady reports whether a filter literal (negated atom or built-in)
// can be evaluated given the bound variables. An equality whose one side is
// a bare variable is ready as soon as the other side is fully bound: Solve
// will bind the variable.
func filterReady(l term.Literal, bound map[term.Var]bool) bool {
	allBound := func(vs []term.Var) bool {
		for _, v := range vs {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	if !l.Neg {
		if b, ok := l.Atom.(term.BuiltinAtom); ok && b.Op == term.OpEq {
			if _, bare := b.L.(term.VarExpr); bare && allBound(term.ExprVars(b.R, nil)) {
				return true
			}
			if _, bare := b.R.(term.VarExpr); bare && allBound(term.ExprVars(b.L, nil)) {
				return true
			}
		}
	}
	return allBound(needs(l))
}

// deltaSeedable reports whether the literal's supporting facts can be
// produced within the stratum currently being evaluated: positive
// version-terms over versions (non-empty path) and positive ins-update-
// terms. Facts of plain objects never change; del/mod body update-terms
// and negated literals are frozen in-stratum by stratification conditions
// (c) and (d).
func deltaSeedable(l term.Literal) bool {
	if l.Neg {
		return false
	}
	switch a := l.Atom.(type) {
	case term.VersionAtom:
		return a.V.Path.Len() > 0
	case term.UpdateAtom:
		return a.Kind == term.Ins
	default:
		return false
	}
}

// costEstimator estimates how many candidates a generator literal
// enumerates; lower is better. baseBound tells whether the literal's
// version base is already bound when it runs.
type costEstimator func(l term.Literal, baseBound bool) int

// staticCost ignores statistics: bound-base generators are cheap, the rest
// tie (preserving source order through the stable greedy choice).
func staticCost(l term.Literal, baseBound bool) int {
	if baseBound {
		return 0
	}
	return 1
}

// statsCost orders unbound-base generators by the cardinality of the
// (path, method) index they will scan — classical selectivity-based join
// ordering. Bound-base lookups are near-free.
func statsCost(base *objectbase.Base) costEstimator {
	return func(l term.Literal, baseBound bool) int {
		if baseBound {
			return 0
		}
		var v term.VersionID
		var method string
		switch a := l.Atom.(type) {
		case term.VersionAtom:
			v, method = a.V, a.App.Method
		case term.UpdateAtom:
			switch a.Kind {
			case term.Ins:
				v, method = a.V.Push(term.Ins), a.App.Method
			case term.Del:
				v, method = a.V.Push(term.Del), term.ExistsMethod
			default:
				v, method = a.V.Push(term.Mod), a.App.Method
			}
		default:
			return 1
		}
		if v.Any {
			// Wildcards scan every path; estimate pessimistically.
			return 1 << 20
		}
		return 1 + base.CountVIDsWith(v.Path, method)
	}
}

// indexedCost refines statsCost with literal-index selectivity: a path-0
// version-term whose result (or first argument) is a constant will execute
// as an index probe, so its cardinality is the probe bucket's size, not the
// whole (path, method) population. Bound-variable results also probe at
// run time, but their values are unknown at plan time, so they keep the
// scan estimate.
func indexedCost(base *objectbase.Base, idx *objectbase.LiteralIndex) costEstimator {
	scan := statsCost(base)
	return func(l term.Literal, baseBound bool) int {
		c := scan(l, baseBound)
		if baseBound || idx == nil {
			return c
		}
		a, ok := l.Atom.(term.VersionAtom)
		if !ok || a.V.Any || a.V.Path.Len() != 0 {
			return c
		}
		if r, isOID := a.App.Result.(term.OID); isOID {
			if p := 1 + idx.CountVIDsWithResult(a.V.Path, a.App.Method, r); p < c {
				c = p
			}
		}
		if len(a.App.Args) > 0 {
			if a0, isOID := a.App.Args[0].(term.OID); isOID {
				if p := 1 + idx.CountVIDsWithArg(a.V.Path, a.App.Method, a0); p < c {
					c = p
				}
			}
		}
		return c
	}
}

// deltaRowEstimate is the planner's cardinality heuristic for a semi-naive
// delta seed: per-iteration deltas are a small fraction of the full
// population (they hold only the facts added by the previous iteration),
// so the estimate shrinks the full count instead of ignoring the
// distinction. The exact size is unknowable at plan time.
func deltaRowEstimate(full int) int { return 1 + full/16 }

// planRule orders the body with the static estimator.
func planRule(r term.Rule) plan { return planRuleCost(r, staticCost) }

// planRuleCost orders the body greedily: filters run as soon as their
// variables are bound; among generators the cheapest (per the estimator)
// runs first, with source order breaking ties.
func planRuleCost(r term.Rule, est costEstimator) plan {
	var p plan
	p.order = greedyOrder(r, est, -1)
	for pos, i := range p.order {
		if deltaSeedable(r.Body[i]) {
			p.deltaPositions = append(p.deltaPositions, pos)
		}
	}
	return p
}

// greedyOrder is the planner core: filters as soon as ready, then the
// cheapest generator, source order breaking ties. When seed >= 0 that
// body literal is forced first (the semi-naive delta seed) and the rest
// are ordered given its bindings — so a delta-restricted evaluation gets
// an order chosen for delta-sized input, not the full-scan order with one
// literal hoisted.
func greedyOrder(r term.Rule, est costEstimator, seed int) []int {
	n := len(r.Body)
	var order []int
	used := make([]bool, n)
	bound := map[term.Var]bool{}
	if seed >= 0 {
		used[seed] = true
		order = append(order, seed)
		for _, v := range binds(r.Body[seed]) {
			bound[v] = true
		}
	}
	for len(order) < n {
		pick := -1
		// 1. Any evaluable filter or binding equality.
		for i, l := range r.Body {
			if used[i] {
				continue
			}
			if l.Neg || isBuiltin(l) {
				if filterReady(l, bound) {
					pick = i
					break
				}
				continue
			}
		}
		// 2. The cheapest generator.
		if pick < 0 {
			best := -1
			for i, l := range r.Body {
				if used[i] || l.Neg || isBuiltin(l) {
					continue
				}
				c := est(l, baseBound(l, bound))
				if pick < 0 || c < best {
					pick, best = i, c
				}
			}
		}
		// 3. Nothing evaluable: safety was violated; keep source order and
		// let evaluation surface the unbound-variable error.
		if pick < 0 {
			for i := range r.Body {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		used[pick] = true
		order = append(order, pick)
		for _, v := range binds(r.Body[pick]) {
			bound[v] = true
		}
	}
	return order
}

func isBuiltin(l term.Literal) bool {
	_, ok := l.Atom.(term.BuiltinAtom)
	return ok
}

func baseBound(l term.Literal, bound map[term.Var]bool) bool {
	var base term.ObjTerm
	switch a := l.Atom.(type) {
	case term.VersionAtom:
		base = a.V.Base
	case term.UpdateAtom:
		base = a.V.Base
	default:
		return false
	}
	if v, ok := base.(term.Var); ok {
		return bound[v]
	}
	return true
}
