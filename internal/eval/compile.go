package eval

// compile.go is the compilation tier between stratification and the
// fixpoint loop: each rule body, in the join order the statistics planner
// picks, becomes a MatchPlan — a flat sequence of index-probe / scan /
// filter / negation-check steps over numbered variable slots. The
// executor (exec.go) runs plans against a base with a per-worker arena,
// replacing the map-based substitution + trail machinery of match.go on
// the hot path. match.go remains as the reference interpreter
// (Options.Interpreted), which the metamorphic suite diffs against.
//
// Index-probe soundness: rule heads always target versions with at least
// one update-kind on their path (Update.Target pushes onto the path), so
// path-0 facts never change during a fixpoint. Probe steps are therefore
// only compiled for path-0 literals, where the input base's LiteralIndex
// stays exact for the whole evaluation; literals over deeper paths scan
// the live base.

import (
	"fmt"
	"hash/fnv"

	"verlog/internal/objectbase"
	"verlog/internal/term"
)

// omode is the static binding mode of an operand position.
type omode uint8

const (
	oConst omode = iota // ground OID, compare
	oBind               // first occurrence of a variable: write the slot
	oCheck              // variable bound earlier: compare against the slot
)

// operand is a compiled object-id-term: a constant or a frame slot with a
// statically known binding mode.
type operand struct {
	mode omode
	slot int
	c    term.OID
}

// value resolves the operand against the frame. Only valid for oConst and
// oCheck operands.
func (op operand) value(fr []term.OID) term.OID {
	if op.mode == oConst {
		return op.c
	}
	return fr[op.slot]
}

// match unifies the operand with a ground OID: constants and checked slots
// compare, binding slots write. A failed match leaves no state to undo —
// slots written by a candidate are simply overwritten by the next one and
// zeroed when the step exhausts.
func (op operand) match(fr []term.OID, o term.OID) bool {
	switch op.mode {
	case oConst:
		return op.c == o
	case oCheck:
		return fr[op.slot] == o
	default:
		fr[op.slot] = o
		return true
	}
}

// access is how a step enumerates candidate versions.
type access uint8

const (
	// accessLookup resolves the bound base to a single VID.
	accessLookup access = iota
	// accessProbeResult probes the literal index on (path, method, result).
	accessProbeResult
	// accessProbeArg probes the literal index on (path, method, first arg).
	accessProbeArg
	// accessScan walks the live (path, method) population.
	accessScan
	// accessAny walks every path carrying the method (any(...) wildcard).
	accessAny
	// accessDelta joins against the facts added by the previous iteration.
	accessDelta
)

// AccessName renders an access for plan output.
func (a access) name() string {
	switch a {
	case accessLookup:
		return AccessLookup
	case accessProbeResult:
		return AccessProbeResult
	case accessProbeArg:
		return AccessProbeArg
	case accessAny:
		return AccessAnyScan
	case accessDelta:
		return AccessDelta
	default:
		return AccessScan
	}
}

// stepKind discriminates the compiled step forms.
type stepKind uint8

const (
	stepScan    stepKind = iota // positive version pattern (version-term or ins)
	stepDel                     // positive del[...] body literal
	stepMod                     // positive mod[...] body literal
	stepBuiltin                 // comparison / binding equality
	stepNegVer                  // negated version-term or ins-term (path pre-pushed)
	stepNegAny                  // negated any(...) version-term
	stepNegDel                  // negated del-term
	stepNegMod                  // negated mod-term
)

// cexpr is a compiled arithmetic expression over frame slots.
type cexpr struct {
	kind uint8 // ceConst, ceSlot, ceNeg, ceBin
	c    term.OID
	slot int
	op   term.ArithOp
	l, r *cexpr
}

const (
	ceConst = iota
	ceSlot
	ceNeg
	ceBin
)

// cstep is one compiled match step. Field use depends on kind; see the
// executor.
type cstep struct {
	kind stepKind
	src  int // source body index, for diagnostics and planinfo
	acc  access

	// Version pattern / update-term payload.
	path   term.Path // effective pattern path (pushed for ins / neg-ins)
	tpath  term.Path // pushed target path for del/mod steps
	method string
	base   operand
	args   []operand
	result operand
	// keyStatic marks a fully constant argument tuple; key is then the
	// precomputed method key. argsBind marks a tuple with binding slots,
	// which forces an application scan.
	keyStatic bool
	key       term.MethodKey
	argsBind  bool
	newResult operand // mod steps

	// Builtin payload.
	cmp      term.CmpOp
	lhs, rhs *cexpr
	bindSlot int  // slot bound by a binding equality; -1 otherwise
	negate   bool // negated builtin

	// bindSlots lists every slot this step may bind; the executor zeroes
	// them when the step exhausts so parent candidates start clean.
	bindSlots []int

	// estRows is the planner's cardinality estimate for generator steps
	// (surfaced through planinfo; not used at run time).
	estRows int
}

// chead is the compiled rule head.
type chead struct {
	kind      term.UpdateKind
	all       bool
	base      operand
	path      term.Path
	method    string
	args      []operand
	keyStatic bool
	key       term.MethodKey
	result    operand
	newResult operand
}

// pmKey buckets delta facts by (path, method) so each delta variant joins
// only the slice its seed literal can match.
type pmKey struct {
	Path   term.Path
	Method string
}

// compiledRule is one rule's MatchPlan set: the full plan plus one
// delta-seeded variant per delta-seedable body literal.
type compiledRule struct {
	nslots int
	steps  []cstep
	head   chead
	// deltaSrc lists the source body indices of delta-seedable literals;
	// deltaSteps[i] is the variant with deltaSrc[i] joined first against
	// the iteration delta, and deltaKeys[i] the bucket its seed reads.
	deltaSrc   []int
	deltaSteps [][]cstep
	deltaKeys  []pmKey
}

// CompiledProgram is the compiled form of an update-program: per-rule match
// plans keyed by the program's hash, reusable across applies that share a
// rule set (the repository caches one per head).
type CompiledProgram struct {
	hash   uint64
	static bool
	rules  []*compiledRule
}

// Hash returns the program hash the plans were compiled for.
func (cp *CompiledProgram) Hash() uint64 { return cp.hash }

// Matches reports whether the compiled plans apply to p under the given
// planner mode.
func (cp *CompiledProgram) Matches(p *term.Program, static bool) bool {
	return cp != nil && cp.static == static && cp.hash == ProgramHash(p)
}

// ProgramHash fingerprints a program's rule set for plan-cache keying.
func ProgramHash(p *term.Program) uint64 {
	h := fnv.New64a()
	h.Write([]byte(p.String()))
	return h.Sum64()
}

// Compile builds match plans for every rule of p against base: join orders
// from the statistics planner refined with index selectivity, probe steps
// for path-0 literals, and delta variants for semi-naive iteration. It
// returns an error when a rule uses a shape the compiler does not support
// (e.g. variables that are unbound where a ground value is required);
// callers fall back to the interpreter then.
func Compile(base *objectbase.Base, p *term.Program, static bool) (*CompiledProgram, error) {
	idx := base.Index()
	est := indexedCost(base, idx)
	if static {
		est = staticCost
	}
	cp := &CompiledProgram{hash: ProgramHash(p), static: static}
	for ri, r := range p.Rules {
		cr, err := compileRule(r, est)
		if err != nil {
			return nil, fmt.Errorf("eval: compile rule %s: %w", r.Label(ri), err)
		}
		cp.rules = append(cp.rules, cr)
	}
	return cp, nil
}

// ruleCompiler carries the per-rule slot table; variants of the same rule
// share the numbering so frames are interchangeable.
type ruleCompiler struct {
	slots map[term.Var]int
	n     int
}

func (rc *ruleCompiler) slot(v term.Var) int {
	if s, ok := rc.slots[v]; ok {
		return s
	}
	s := rc.n
	rc.slots[v] = s
	rc.n++
	return s
}

func compileRule(r term.Rule, est costEstimator) (*compiledRule, error) {
	rc := &ruleCompiler{slots: map[term.Var]int{}}
	order := greedyOrder(r, est, -1)
	steps, bound, err := compileSteps(rc, r, order, -1, est)
	if err != nil {
		return nil, err
	}
	head, err := compileHead(rc, r, bound)
	if err != nil {
		return nil, err
	}
	cr := &compiledRule{steps: steps, head: head}
	for i, l := range r.Body {
		if !deltaSeedable(l) {
			continue
		}
		dorder := greedyOrder(r, est, i)
		dsteps, _, err := compileSteps(rc, r, dorder, i, est)
		if err != nil {
			return nil, err
		}
		cr.deltaSrc = append(cr.deltaSrc, i)
		cr.deltaSteps = append(cr.deltaSteps, dsteps)
		cr.deltaKeys = append(cr.deltaKeys, pmKey{Path: dsteps[0].path, Method: dsteps[0].method})
	}
	cr.nslots = rc.n
	return cr, nil
}

// literalCompiler compiles the operands of one literal, tracking binding
// modes against the bound-before-literal snapshot.
type literalCompiler struct {
	rc    *ruleCompiler
	bound map[int]bool // slots bound by earlier literals or earlier positions of this one
	prior map[int]bool // slots bound strictly before this literal
	binds []int
}

func (lc *literalCompiler) operand(t term.ObjTerm) (operand, error) {
	switch x := t.(type) {
	case term.OID:
		return operand{mode: oConst, c: x}, nil
	case term.Var:
		s := lc.rc.slot(x)
		if lc.bound[s] {
			return operand{mode: oCheck, slot: s}, nil
		}
		lc.bound[s] = true
		lc.binds = append(lc.binds, s)
		return operand{mode: oBind, slot: s}, nil
	default:
		return operand{}, fmt.Errorf("unsupported object term %T", t)
	}
}

// groundOperand is operand for positions that must be resolvable before the
// literal runs (negations, head positions).
func (lc *literalCompiler) groundOperand(t term.ObjTerm) (operand, error) {
	op, err := lc.operand(t)
	if err != nil {
		return op, err
	}
	if op.mode == oBind {
		return op, fmt.Errorf("variable %s unbound where a ground value is required", t)
	}
	return op, nil
}

// priorGround reports whether t's value is available before the literal
// starts enumerating (a constant or a slot bound by an earlier literal).
func (lc *literalCompiler) priorGround(t term.ObjTerm) bool {
	switch x := t.(type) {
	case term.OID:
		return true
	case term.Var:
		s, ok := lc.rc.slots[x]
		return ok && lc.prior[s]
	default:
		return false
	}
}

// compileApp compiles the argument and result operands into st and
// classifies the key.
func (lc *literalCompiler) compileApp(st *cstep, app term.MethodApp) error {
	st.method = app.Method
	st.keyStatic = true
	for _, a := range app.Args {
		op, err := lc.operand(a)
		if err != nil {
			return err
		}
		if op.mode != oConst {
			st.keyStatic = false
		}
		if op.mode == oBind {
			st.argsBind = true
		}
		st.args = append(st.args, op)
	}
	if st.keyStatic {
		consts := make([]term.OID, len(st.args))
		for i, op := range st.args {
			consts[i] = op.c
		}
		st.key = term.MethodKey{Method: app.Method, Args: term.EncodeOIDs(consts)}
	}
	op, err := lc.operand(app.Result)
	if err != nil {
		return err
	}
	st.result = op
	return nil
}

// compileSteps compiles the body literals in the given order. deltaSrc >= 0
// marks the source literal compiled as the delta seed (it must be first in
// order). It returns the steps and the final bound-slot set (for the head).
func compileSteps(rc *ruleCompiler, r term.Rule, order []int, deltaSrc int, est costEstimator) ([]cstep, map[int]bool, error) {
	bound := map[int]bool{}
	estBound := map[term.Var]bool{}
	steps := make([]cstep, 0, len(order))
	for pos, li := range order {
		l := r.Body[li]
		lc := &literalCompiler{rc: rc, bound: bound, prior: snapshot(bound)}
		st := cstep{src: li}
		isDelta := deltaSrc >= 0 && pos == 0
		if err := compileLiteral(lc, &st, l, isDelta); err != nil {
			return nil, nil, fmt.Errorf("literal %s: %w", l, err)
		}
		st.bindSlots = lc.binds
		if st.kind == stepScan || st.kind == stepDel || st.kind == stepMod {
			full := est(l, baseBound(l, estBound))
			if st.acc == accessDelta {
				st.estRows = deltaRowEstimate(full)
			} else {
				st.estRows = full
			}
		}
		for _, v := range binds(l) {
			estBound[v] = true
		}
		steps = append(steps, st)
	}
	return steps, bound, nil
}

func snapshot(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func compileLiteral(lc *literalCompiler, st *cstep, l term.Literal, isDelta bool) error {
	if l.Neg {
		return compileNegation(lc, st, l.Atom)
	}
	switch a := l.Atom.(type) {
	case term.VersionAtom:
		return compilePattern(lc, st, a.V, a.V.Path, a.App, isDelta)
	case term.UpdateAtom:
		switch a.Kind {
		case term.Ins:
			return compilePattern(lc, st, a.V, a.V.Path.Push(term.Ins), a.App, isDelta)
		case term.Del:
			return compileDelMod(lc, st, a, stepDel)
		case term.Mod:
			return compileDelMod(lc, st, a, stepMod)
		default:
			return fmt.Errorf("invalid update kind %v", a.Kind)
		}
	case term.BuiltinAtom:
		return compileBuiltin(lc, st, a, false)
	default:
		return fmt.Errorf("unknown atom type %T", l.Atom)
	}
}

// compilePattern compiles a positive version pattern (version-term, or
// ins-term with the path already pushed) and picks its access.
func compilePattern(lc *literalCompiler, st *cstep, v term.VersionID, path term.Path, app term.MethodApp, isDelta bool) error {
	st.kind = stepScan
	st.path = path
	// Access choice precedes operand compilation: probe eligibility depends
	// on values available before this literal binds anything.
	switch {
	case isDelta:
		st.acc = accessDelta
	case v.Any:
		st.acc = accessAny
	case lc.priorGround(v.Base):
		st.acc = accessLookup
	case path.Len() == 0 && lc.priorGround(app.Result):
		st.acc = accessProbeResult
	case path.Len() == 0 && len(app.Args) > 0 && lc.priorGround(app.Args[0]):
		st.acc = accessProbeArg
	default:
		st.acc = accessScan
	}
	op, err := lc.operand(v.Base)
	if err != nil {
		return err
	}
	st.base = op
	return lc.compileApp(st, app)
}

// compileDelMod compiles positive del/mod body literals: candidates are
// enumerated on the pushed target path, then matched against v*.
func compileDelMod(lc *literalCompiler, st *cstep, a term.UpdateAtom, kind stepKind) error {
	if a.All {
		return fmt.Errorf("delete-all in body position")
	}
	st.kind = kind
	st.path = a.V.Path
	st.tpath = a.V.Path.Push(a.Kind)
	if a.V.Any {
		return fmt.Errorf("any(...) on an update-term")
	}
	if lc.priorGround(a.V.Base) {
		st.acc = accessLookup
	} else {
		st.acc = accessScan
	}
	op, err := lc.operand(a.V.Base)
	if err != nil {
		return err
	}
	st.base = op
	if err := lc.compileApp(st, a.App); err != nil {
		return err
	}
	if kind == stepMod {
		nr, err := lc.operand(a.NewResult)
		if err != nil {
			return err
		}
		st.newResult = nr
	}
	return nil
}

func compileBuiltin(lc *literalCompiler, st *cstep, a term.BuiltinAtom, negated bool) error {
	st.kind = stepBuiltin
	st.cmp = a.Op
	st.negate = negated
	st.bindSlot = -1
	if a.Op == term.OpEq && !negated {
		// A binding equality: exactly the shapes SolveTrail binds.
		if v, ok := bareUnboundVar(lc, a.L); ok {
			rhs, err := compileExpr(lc, a.R)
			if err != nil {
				return err
			}
			s := lc.rc.slot(v)
			lc.bound[s] = true
			lc.binds = append(lc.binds, s)
			st.bindSlot = s
			st.rhs = rhs
			return nil
		}
		if v, ok := bareUnboundVar(lc, a.R); ok {
			lhs, err := compileExpr(lc, a.L)
			if err != nil {
				return err
			}
			s := lc.rc.slot(v)
			lc.bound[s] = true
			lc.binds = append(lc.binds, s)
			st.bindSlot = s
			st.rhs = lhs
			return nil
		}
	}
	lhs, err := compileExpr(lc, a.L)
	if err != nil {
		return err
	}
	rhs, err := compileExpr(lc, a.R)
	if err != nil {
		return err
	}
	st.lhs, st.rhs = lhs, rhs
	return nil
}

// bareUnboundVar reports whether e is a bare variable with no binding yet.
func bareUnboundVar(lc *literalCompiler, e term.Expr) (term.Var, bool) {
	v, ok := e.(term.VarExpr)
	if !ok {
		return "", false
	}
	if s, seen := lc.rc.slots[v.V]; seen && lc.bound[s] {
		return "", false
	}
	return v.V, true
}

func compileExpr(lc *literalCompiler, e term.Expr) (*cexpr, error) {
	switch x := e.(type) {
	case term.ConstExpr:
		return &cexpr{kind: ceConst, c: x.OID}, nil
	case term.VarExpr:
		s, seen := lc.rc.slots[x.V]
		if !seen || !lc.bound[s] {
			return nil, fmt.Errorf("variable %s unbound in expression", x.V)
		}
		return &cexpr{kind: ceSlot, slot: s}, nil
	case term.NegExpr:
		sub, err := compileExpr(lc, x.E)
		if err != nil {
			return nil, err
		}
		return &cexpr{kind: ceNeg, l: sub}, nil
	case term.BinExpr:
		l, err := compileExpr(lc, x.L)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(lc, x.R)
		if err != nil {
			return nil, err
		}
		return &cexpr{kind: ceBin, op: x.Op, l: l, r: r}, nil
	default:
		return nil, fmt.Errorf("unknown expression %T", e)
	}
}

// compileNegation compiles a negated literal; every position must be ground
// when the step runs (safe rules guarantee it — the planner schedules
// negations after their variables bind).
func compileNegation(lc *literalCompiler, st *cstep, a term.Atom) error {
	switch x := a.(type) {
	case term.VersionAtom:
		if x.V.Any {
			st.kind = stepNegAny
			st.path = x.V.Path
		} else {
			st.kind = stepNegVer
			st.path = x.V.Path
		}
		op, err := lc.groundOperand(x.V.Base)
		if err != nil {
			return err
		}
		st.base = op
		return compileGroundApp(lc, st, x.App)
	case term.UpdateAtom:
		if x.All {
			return fmt.Errorf("delete-all in body position")
		}
		st.path = x.V.Path
		st.tpath = x.V.Path.Push(x.Kind)
		switch x.Kind {
		case term.Ins:
			// !ins[v].m -> r is !ins(v).m -> r: a plain fact check on the
			// pushed path.
			st.kind = stepNegVer
			st.path = st.tpath
		case term.Del:
			st.kind = stepNegDel
		case term.Mod:
			st.kind = stepNegMod
		default:
			return fmt.Errorf("invalid update kind %v", x.Kind)
		}
		op, err := lc.groundOperand(x.V.Base)
		if err != nil {
			return err
		}
		st.base = op
		if err := compileGroundApp(lc, st, x.App); err != nil {
			return err
		}
		if x.Kind == term.Mod {
			nr, err := lc.groundOperand(x.NewResult)
			if err != nil {
				return err
			}
			st.newResult = nr
		}
		return nil
	case term.BuiltinAtom:
		return compileBuiltin(lc, st, x, true)
	default:
		return fmt.Errorf("unknown atom type %T", a)
	}
}

// compileGroundApp compiles a fully ground application (negation shapes).
func compileGroundApp(lc *literalCompiler, st *cstep, app term.MethodApp) error {
	st.method = app.Method
	st.keyStatic = true
	for _, a := range app.Args {
		op, err := lc.groundOperand(a)
		if err != nil {
			return err
		}
		if op.mode != oConst {
			st.keyStatic = false
		}
		st.args = append(st.args, op)
	}
	if st.keyStatic {
		consts := make([]term.OID, len(st.args))
		for i, op := range st.args {
			consts[i] = op.c
		}
		st.key = term.MethodKey{Method: app.Method, Args: term.EncodeOIDs(consts)}
	}
	op, err := lc.groundOperand(app.Result)
	if err != nil {
		return err
	}
	st.result = op
	return nil
}

func compileHead(rc *ruleCompiler, r term.Rule, bound map[int]bool) (chead, error) {
	lc := &literalCompiler{rc: rc, bound: bound, prior: bound}
	h := chead{kind: r.Head.Kind, all: r.Head.All, path: r.Head.V.Path}
	if r.Head.V.Any {
		return h, fmt.Errorf("any(...) in head")
	}
	op, err := lc.groundOperand(r.Head.V.Base)
	if err != nil {
		return h, fmt.Errorf("head %s: %w", r.Head, err)
	}
	h.base = op
	if h.all {
		return h, nil
	}
	h.method = r.Head.App.Method
	h.keyStatic = true
	for _, a := range r.Head.App.Args {
		aop, err := lc.groundOperand(a)
		if err != nil {
			return h, fmt.Errorf("head %s: %w", r.Head, err)
		}
		if aop.mode != oConst {
			h.keyStatic = false
		}
		h.args = append(h.args, aop)
	}
	if h.keyStatic {
		consts := make([]term.OID, len(h.args))
		for i, aop := range h.args {
			consts[i] = aop.c
		}
		h.key = term.MethodKey{Method: h.method, Args: term.EncodeOIDs(consts)}
	}
	rop, err := lc.groundOperand(r.Head.App.Result)
	if err != nil {
		return h, fmt.Errorf("head %s: %w", r.Head, err)
	}
	h.result = rop
	if h.kind == term.Mod {
		nr, err := lc.groundOperand(r.Head.NewResult)
		if err != nil {
			return h, fmt.Errorf("head %s: %w", r.Head, err)
		}
		h.newResult = nr
	}
	return h, nil
}
