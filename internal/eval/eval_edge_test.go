package eval

import (
	"errors"
	"strings"
	"testing"

	"verlog/internal/parser"
	"verlog/internal/term"
)

// --- Methods with arguments ------------------------------------------------

func TestMethodsWithArguments(t *testing.T) {
	ob := mustBase(t, `
shop.price@apple -> 3 / price@pear -> 4.
`)
	p := mustProgram(t, `
discount: mod[S].price@F -> (P, P') <- S.price@F -> P, P > 3, P' = P - 1.
`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `shop.price@apple -> 3. shop.price@pear -> 3.`)
	wantNoFact(t, res.Final, `shop.price@pear -> 4.`)
}

func TestArgumentsBindVariables(t *testing.T) {
	ob := mustBase(t, `
grid.cell@1,2 -> full.
grid.cell@2,1 -> empty.
`)
	p := mustProgram(t, `
swap: ins[grid].mirror@Y,X -> V <- grid.cell@X,Y -> V.
`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `grid.mirror@2,1 -> full. grid.mirror@1,2 -> empty.`)
}

// --- Update facts (k = 0 rules) --------------------------------------------

// TestUpdateFactsBranchRejected: fact-form ins and del on the same object
// branch the version tree (ins(henry) vs del(henry) are incomparable), so
// the linearity check rejects the program.
func TestUpdateFactsBranchRejected(t *testing.T) {
	ob := mustBase(t, `henry.isa -> empl.`)
	p := mustProgram(t, `
ins[henry].hobby -> chess.
ins[henry].hobby -> go.
del[henry].isa -> empl.
`)
	_, err := Run(ob, p, Options{})
	var le *LinearityError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LinearityError", err)
	}
}

func TestUpdateFactsLinear(t *testing.T) {
	ob := mustBase(t, `henry.isa -> empl.`)
	p := mustProgram(t, `
ins[henry].hobby -> chess.
ins[henry].hobby -> go.
`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `henry.hobby -> chess. henry.hobby -> go. henry.isa -> empl.`)
}

func TestInsDelOnSameObjectViolatesLinearity(t *testing.T) {
	ob := mustBase(t, `henry.isa -> empl.`)
	p := mustProgram(t, `
ins[henry].hobby -> chess.
del[henry].isa -> empl.
`)
	_, err := Run(ob, p, Options{})
	var le *LinearityError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LinearityError", err)
	}
}

// --- Head truth ------------------------------------------------------------

// TestDeleteRequiresExistingFact: del[v].m -> r is head-true only when
// v*.m -> r holds; deleting absent information fires nothing.
func TestDeleteRequiresExistingFact(t *testing.T) {
	ob := mustBase(t, `x.m -> a.`)
	p := mustProgram(t, `r: del[X].m -> b <- X.m -> a.`)
	res := mustRun(t, ob, p, Options{})
	if res.Fired != 0 {
		t.Errorf("fired = %d, want 0", res.Fired)
	}
	if res.Result.HasVersion(term.GV(term.Sym("x"), term.Del)) {
		t.Errorf("del version created for no-op delete")
	}
	wantFact(t, res.Final, `x.m -> a.`)
}

// TestModifyRequiresOldResult: mod[v].m -> (r, r') fires only when v* has
// m -> r.
func TestModifyRequiresOldResult(t *testing.T) {
	ob := mustBase(t, `x.m -> a.`)
	p := mustProgram(t, `r: mod[X].m -> (b, c) <- X.m -> a.`)
	res := mustRun(t, ob, p, Options{})
	if res.Fired != 0 {
		t.Errorf("fired = %d, want 0", res.Fired)
	}
	wantFact(t, res.Final, `x.m -> a.`)
}

// --- Multiple updates on one target ------------------------------------------

func TestMultipleInsertsOneTarget(t *testing.T) {
	ob := mustBase(t, `x.isa -> node / n -> 1. y.isa -> node / n -> 2.`)
	p := mustProgram(t, `r: ins[x].peer -> Y <- Y.isa -> node.`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `x.peer -> x. x.peer -> y.`)
}

func TestMultipleModsSameMethodKey(t *testing.T) {
	// Set-valued method: two mods replace two results of the same key.
	ob := mustBase(t, `x.tag -> a / tag -> b / tag -> keep.`)
	p := mustProgram(t, `
r: mod[x].tag -> (T, T') <- x.tag -> T, T != keep, T' = 1.
`)
	// T' = 1 for both: both a and b collapse into 1.
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `x.tag -> 1. x.tag -> keep.`)
	wantNoFact(t, res.Final, `x.tag -> a. x.tag -> b.`)
}

func TestModifySwapNoInterference(t *testing.T) {
	// Swapping two results through one T_P application: removals happen
	// before additions, so mod(a->b) and mod(b->a) yield {a, b} again.
	ob := mustBase(t, `x.m -> a / m -> b.`)
	p := mustProgram(t, `
r1: mod[x].m -> (a, b) <- x.m -> a.
r2: mod[x].m -> (b, a) <- x.m -> b.
`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Final, `x.m -> a. x.m -> b.`)
}

// --- Errors surfaced with context -------------------------------------------

func TestArithmeticErrorCarriesRule(t *testing.T) {
	ob := mustBase(t, `x.m -> henry.`)
	p := mustProgram(t, `badrule: ins[X].k -> V <- X.m -> M, V = M * 2.`)
	_, err := Run(ob, p, Options{})
	if err == nil || !strings.Contains(err.Error(), "badrule") {
		t.Errorf("err = %v, want mention of badrule", err)
	}
}

func TestDivisionByZeroSurfaces(t *testing.T) {
	ob := mustBase(t, `x.m -> 0.`)
	p := mustProgram(t, `r: ins[X].k -> V <- X.m -> M, V = 1 / M.`)
	_, err := Run(ob, p, Options{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestOverflowSurfacesNotPanics(t *testing.T) {
	ob := mustBase(t, `x.m -> 9223372036854775807.`)
	p := mustProgram(t, `r: ins[X].k -> V <- X.m -> M, V = M * M.`)
	_, err := Run(ob, p, Options{})
	if !errors.Is(err, term.ErrRatOverflow) {
		t.Errorf("err = %v, want ErrRatOverflow", err)
	}
}

func TestIterationLimit(t *testing.T) {
	// A large recursive workload with a tiny budget trips the limiter.
	ob := mustBase(t, `
a.isa -> person / parents -> b.
b.isa -> person / parents -> c.
c.isa -> person / parents -> d.
d.isa -> person / parents -> e.
e.isa -> person.
`)
	p := mustProgram(t, `
base: ins[X].anc -> P <- X.isa -> person / parents -> P.
step: ins[X].anc -> P <- ins(X).isa -> person / anc -> A, A.isa -> person / parents -> P.
`)
	_, err := Run(ob, p, Options{MaxIterations: 2})
	var ile *IterationLimitError
	if !errors.As(err, &ile) {
		t.Fatalf("err = %v, want IterationLimitError", err)
	}
	if ile.Limit != 2 {
		t.Errorf("limit = %d", ile.Limit)
	}
}

// --- Copy semantics ----------------------------------------------------------

// TestCopyPropagatesWholeState: creating a version copies every method
// application of v*, including multi-result sets and argumented methods.
func TestCopyPropagatesWholeState(t *testing.T) {
	ob := mustBase(t, `
x.tags -> a / tags -> b.
x.rate@2025 -> 10 / rate@2026 -> 12.
`)
	p := mustProgram(t, `r: ins[x].touched -> yes <- x.tags -> a.`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Result, `
ins(x).tags -> a. ins(x).tags -> b.
ins(x).rate@2025 -> 10. ins(x).rate@2026 -> 12.
ins(x).touched -> yes.
`)
}

// TestChainedCopyUsesNearestVersion: a second-level update copies from the
// updated version, not from the original object.
func TestChainedCopyUsesNearestVersion(t *testing.T) {
	ob := mustBase(t, `x.n -> 1.`)
	p := mustProgram(t, `
r1: mod[x].n -> (1, 2) <- x.n -> 1.
r2: ins[mod(x)].seen -> yes <- mod(x).n -> 2.
`)
	res := mustRun(t, ob, p, Options{})
	wantFact(t, res.Result, `ins(mod(x)).n -> 2. ins(mod(x)).seen -> yes.`)
	wantNoFact(t, res.Result, `ins(mod(x)).n -> 1.`)
	wantFact(t, res.Final, `x.n -> 2. x.seen -> yes.`)
}

// TestSkippedLevelUsesVStar: updating del(mod(x)) when only x exists copies
// from x (v* resolution walks down the chain).
func TestSkippedLevelUsesVStar(t *testing.T) {
	ob := mustBase(t, `x.m -> a / k -> b.`)
	p := mustProgram(t, `r: del[mod(x)].m -> a <- x.m -> a.`)
	res := mustRun(t, ob, p, Options{})
	// No mod(x) exists; v* of mod(x) is x. The target del(mod(x)) copies
	// from x and drops m -> a.
	wantFact(t, res.Result, `del(mod(x)).k -> b.`)
	wantNoFact(t, res.Result, `del(mod(x)).m -> a.`)
	if res.Result.HasVersion(term.GV(term.Sym("x"), term.Mod)) {
		t.Errorf("intermediate mod(x) should not materialize")
	}
	wantFact(t, res.Final, `x.k -> b.`)
	wantNoFact(t, res.Final, `x.m -> a.`)
}

// --- Query edge cases ---------------------------------------------------------

func TestQueryWithNegationAndBuiltin(t *testing.T) {
	ob := mustBase(t, `
a.n -> 1. b.n -> 2. c.n -> 3. b.skip -> yes.
`)
	lits, err := parser.Query(`X.n -> N, N > 1, !X.skip -> yes.`, "q")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bs, err := Query(ob, lits)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(bs) != 1 || bs[0].String() != "N=3, X=c" {
		t.Errorf("bindings = %v", bs)
	}
}

func TestQueryGroundTruth(t *testing.T) {
	ob := mustBase(t, `a.n -> 1.`)
	lits, _ := parser.Query(`a.n -> 1.`, "q")
	bs, err := Query(ob, lits)
	if err != nil || len(bs) != 1 {
		t.Errorf("ground query: %v, %v", bs, err)
	}
	lits2, _ := parser.Query(`a.n -> 2.`, "q")
	bs2, err := Query(ob, lits2)
	if err != nil || len(bs2) != 0 {
		t.Errorf("false ground query: %v, %v", bs2, err)
	}
}

// --- Negated update-terms, remaining kinds -----------------------------------

func TestNegatedInsUpdateTerm(t *testing.T) {
	ob := mustBase(t, `a.isa -> item. b.isa -> item / special -> yes.`)
	p := mustProgram(t, `
r1: ins[X].flag -> on <- X.isa -> item / special -> yes.
r2: ins[ins(X)].note -> plain <- ins(X).isa -> item, !ins[X].flag -> on.
`)
	// r2 must not apply to b (its ins version got the flag); but ins(a)
	// does not exist (r1 never fired for a), so r2 has no candidate at all.
	res := mustRun(t, ob, p, Options{})
	wantNoFact(t, res.Result, `ins(ins(b)).note -> plain.`)
	wantNoFact(t, res.Result, `ins(ins(a)).note -> plain.`)
}

func TestPositiveDelUpdateTermEnumerates(t *testing.T) {
	ob := mustBase(t, `
x.m -> a / m -> b / keep -> yes.
y.m -> c / keep -> yes.
`)
	p := mustProgram(t, `
r1: del[X].m -> R <- X.m -> R, X.keep -> yes, R != c.
r2: ins[del(X)].logged -> R <- del[X].m -> R.
`)
	res := mustRun(t, ob, p, Options{})
	// x lost both a and b; both deletions are observable via the positive
	// del update-term; y was untouched.
	wantFact(t, res.Result, `ins(del(x)).logged -> a. ins(del(x)).logged -> b.`)
	if res.Result.HasVersion(term.GV(term.Sym("y"), term.Del)) {
		t.Errorf("y should have no del version")
	}
	wantFact(t, res.Final, `x.keep -> yes. x.logged -> a. x.logged -> b. y.m -> c.`)
}

// --- Determinism ---------------------------------------------------------------

func TestRunDeterministic(t *testing.T) {
	progSrc := `
rule1: mod[E].sal -> (S, S') <- E.isa -> empl / pos -> mgr / sal -> S, S' = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S') <- E.isa -> empl / sal -> S, !E.pos -> mgr, S' = S * 1.1.
rule3: del[mod(E)].* <- mod(E).isa -> empl / boss -> B / sal -> SE, mod(B).isa -> empl / sal -> SB, SE > SB.
rule4: ins[mod(E)].isa -> hpe <- mod(E).isa -> empl / sal -> S, S > 4500, !del[mod(E)].isa -> empl.
`
	baseSrc := `
phil.isa -> empl / pos -> mgr / sal -> 4000.
bob.isa -> empl / boss -> phil / sal -> 4200.
ann.isa -> empl / boss -> phil / sal -> 4500.
`
	var first *Result
	for i := 0; i < 5; i++ {
		res := mustRun(t, mustBase(t, baseSrc), mustProgram(t, progSrc), Options{})
		if first == nil {
			first = res
			continue
		}
		if !res.Result.Equal(first.Result) || !res.Final.Equal(first.Final) {
			t.Fatalf("run %d differs", i)
		}
	}
}
