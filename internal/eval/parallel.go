package eval

import (
	"sync"

	"verlog/internal/objectbase"
	"verlog/internal/term"
)

// fireTask is one unit of step-1 matching: a rule, optionally restricted to
// a delta position (-1 for a full evaluation).
type fireTask struct {
	ri  int
	pos int
}

// collectFirings runs step 1 for every task and returns the fired updates
// per task, in task order. Matching only reads the base, so tasks run
// concurrently when Options.Parallelism allows; results are merged in task
// order afterwards, keeping evaluation deterministic.
func (e *engine) collectFirings(tasks []fireTask, delta []term.Fact) ([][]Update, error) {
	results := make([][]Update, len(tasks))
	runTask := func(ti int) error {
		t := tasks[ti]
		return e.step1Rule(t.ri, t.pos, delta, func(u Update) error {
			results[ti] = append(results[ti], u)
			return nil
		})
	}

	workers := e.opts.Parallelism
	if workers < 2 || len(tasks) < 2 {
		for ti := range tasks {
			if err := runTask(ti); err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// Buffer and close the queue up front so early-exiting workers can
	// never deadlock the send side.
	work := make(chan int, len(tasks))
	for ti := range tasks {
		work <- ti
	}
	close(work)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range work {
				if err := runTask(ti); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
		return results, nil
	}
}

// computeStates computes the new state for every target, in parallel when
// configured. computeState only reads the base; mutation (SetState)
// happens sequentially in the caller.
func (e *engine) computeStates(targets []term.GVID, byTarget map[term.GVID][]Update) []*objectbase.State {
	states := make([]*objectbase.State, len(targets))
	workers := e.opts.Parallelism
	if workers < 2 || len(targets) < 2 {
		for i, w := range targets {
			states[i] = e.computeState(w, byTarget[w])
		}
		return states
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	work := make(chan int, len(targets))
	for i := range targets {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				states[i] = e.computeState(targets[i], byTarget[targets[i]])
			}
		}()
	}
	wg.Wait()
	return states
}
