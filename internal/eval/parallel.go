package eval

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"verlog/internal/objectbase"
	"verlog/internal/term"
)

// fireTask is one unit of step-1 matching: a rule, optionally restricted to
// a delta position (-1 for a full evaluation).
type fireTask struct {
	ri  int
	pos int
}

// fireStat is the cost of one step-1 task: when it started, how long the
// matching took, and how many complete body matches it enumerated.
type fireStat struct {
	start   time.Time
	dur     time.Duration
	matched int64
}

// stepWorker is one goroutine's matching state: the interpreter's matcher
// or the compiled-plan executor, whichever path the run uses.
type stepWorker struct {
	m *matcher
	x *executor
}

// step1Compiled is step1Rule for the compiled path: it runs rule ri's full
// plan (vi < 0) or its vi-th delta variant against the variant's delta
// bucket.
func (e *engine) step1Compiled(x *executor, ri, vi int, matched *int64, onFire func(Update) error) error {
	cr := e.compiled.rules[ri]
	steps := cr.steps
	var delta []term.Fact
	if vi >= 0 {
		steps = cr.deltaSteps[vi]
		delta = e.buckets[cr.deltaKeys[vi]]
	}
	if err := x.run(cr, steps, delta, matched, onFire); err != nil {
		return fmt.Errorf("eval: rule %s: %w", e.labels[ri], err)
	}
	return nil
}

// collectFirings runs step 1 for every task and returns the fired updates
// and cost stats per task, in task order. Matching only reads the base, so
// tasks run concurrently when Options.Parallelism allows; results are
// merged in task order afterwards, keeping evaluation deterministic. When
// tracing (Options.Span set), each task runs under runtime/pprof labels
// (stratum, rule) so CPU profiles attribute samples to rules.
//
// When direct is non-nil (sequential runs only), each task's updates are
// fed straight into direct(ti) as they fire and no result buffers are
// built; the returned results slice is nil. This skips a full buffer-and-
// copy pass on the hot path while preserving task-order determinism,
// because a sequential run fires tasks in exactly merge order anyway.
func (e *engine) collectFirings(si int, tasks []fireTask, delta []term.Fact, direct func(ti int) func(Update)) ([][]Update, []fireStat, error) {
	var results [][]Update
	if direct == nil {
		results = make([][]Update, len(tasks))
	}
	stats := make([]fireStat, len(tasks))
	// Matchers and executors carry per-goroutine scratch state (candidate
	// buffers, frames), so each worker matches through its own; the
	// sequential path reuses the engine's.
	match := func(w *stepWorker, ti int) error {
		t := tasks[ti]
		stats[ti].start = time.Now()
		var sink func(u Update) error
		if direct != nil {
			ds := direct(ti)
			sink = func(u Update) error {
				ds(u)
				return nil
			}
		} else {
			if e.compiled != nil && t.pos < 0 {
				// Presize the result buffer from the plan's first-generator
				// estimate: full evaluations of scan-shaped rules emit on the
				// order of the driving literal's population, and reserving it
				// up front avoids the append-grow copies on large runs.
				cr := e.compiled.rules[t.ri]
				for si := range cr.steps {
					if est := cr.steps[si].estRows; est > 0 {
						if est > 1<<16 {
							est = 1 << 16
						}
						results[ti] = make([]Update, 0, est)
						break
					}
				}
			}
			sink = func(u Update) error {
				results[ti] = append(results[ti], u)
				return nil
			}
		}
		var err error
		if e.compiled != nil {
			err = e.step1Compiled(w.x, t.ri, t.pos, &stats[ti].matched, sink)
		} else {
			err = e.step1Rule(w.m, t.ri, t.pos, delta, &stats[ti].matched, sink)
		}
		stats[ti].dur = time.Since(stats[ti].start)
		return err
	}
	runTask := match
	if e.opts.Span != nil {
		// Label the goroutine for the duration of the task; the allocation
		// per task is acceptable because tracing is opt-in per run.
		stratum := strconv.Itoa(si + 1)
		runTask = func(w *stepWorker, ti int) (err error) {
			labels := pprof.Labels("stratum", stratum, "rule", e.labels[tasks[ti].ri])
			pprof.Do(context.Background(), labels, func(context.Context) {
				err = match(w, ti)
			})
			return err
		}
	}

	workers := e.opts.Parallelism
	if direct != nil {
		// A direct sink mutates shared accumulator state; the caller only
		// passes one on sequential runs, and this pins that invariant.
		workers = 1
	}
	if workers < 2 || len(tasks) < 2 {
		w := &stepWorker{m: e.m, x: e.x}
		for ti := range tasks {
			if err := runTask(w, ti); err != nil {
				return nil, nil, err
			}
		}
		return results, stats, nil
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// Workers scan the base concurrently; a deferred VID index must
	// materialize now, while this goroutine is still the only one running.
	e.base.EnsureVIDIndex()
	// Buffer and close the queue up front so early-exiting workers can
	// never deadlock the send side.
	work := make(chan int, len(tasks))
	for ti := range tasks {
		work <- ti
	}
	close(work)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sw := &stepWorker{}
			if e.compiled != nil {
				sw.x = newExecutor(e.base, e.idx)
			} else {
				sw.m = newMatcher(e.base)
			}
			for ti := range work {
				if err := runTask(sw, ti); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, nil, err
	default:
		return results, stats, nil
	}
}

// computeStates computes the new state for every target, in parallel when
// configured. computeState only reads the base; mutation (SetState)
// happens sequentially in the caller.
func (e *engine) computeStates(targets []*targetUpdates) []*objectbase.State {
	states := make([]*objectbase.State, len(targets))
	workers := e.opts.Parallelism
	if workers < 2 || len(targets) < 2 {
		for i, tu := range targets {
			states[i] = e.computeState(tu.w, tu.ups, &e.arena)
		}
		return states
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	work := make(chan int, len(targets))
	for i := range targets {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Arenas are single-goroutine; each worker clones from its own.
			var a objectbase.StateArena
			for i := range work {
				states[i] = e.computeState(targets[i].w, targets[i].ups, &a)
			}
		}()
	}
	wg.Wait()
	return states
}
