package eval

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"verlog/internal/objectbase"
	"verlog/internal/term"
)

// fireTask is one unit of step-1 matching: a rule, optionally restricted to
// a delta position (-1 for a full evaluation).
type fireTask struct {
	ri  int
	pos int
}

// fireStat is the cost of one step-1 task: when it started, how long the
// matching took, and how many complete body matches it enumerated.
type fireStat struct {
	start   time.Time
	dur     time.Duration
	matched int64
}

// collectFirings runs step 1 for every task and returns the fired updates
// and cost stats per task, in task order. Matching only reads the base, so
// tasks run concurrently when Options.Parallelism allows; results are
// merged in task order afterwards, keeping evaluation deterministic. When
// tracing (Options.Span set), each task runs under runtime/pprof labels
// (stratum, rule) so CPU profiles attribute samples to rules.
func (e *engine) collectFirings(si int, tasks []fireTask, delta []term.Fact) ([][]Update, []fireStat, error) {
	results := make([][]Update, len(tasks))
	stats := make([]fireStat, len(tasks))
	// The matcher carries per-goroutine scratch buffers, so each worker
	// matches through its own; the sequential path reuses the engine's.
	match := func(m *matcher, ti int) error {
		t := tasks[ti]
		stats[ti].start = time.Now()
		err := e.step1Rule(m, t.ri, t.pos, delta, &stats[ti].matched, func(u Update) error {
			results[ti] = append(results[ti], u)
			return nil
		})
		stats[ti].dur = time.Since(stats[ti].start)
		return err
	}
	runTask := match
	if e.opts.Span != nil {
		// Label the goroutine for the duration of the task; the allocation
		// per task is acceptable because tracing is opt-in per run.
		stratum := strconv.Itoa(si + 1)
		runTask = func(m *matcher, ti int) (err error) {
			labels := pprof.Labels("stratum", stratum, "rule", e.labels[tasks[ti].ri])
			pprof.Do(context.Background(), labels, func(context.Context) {
				err = match(m, ti)
			})
			return err
		}
	}

	workers := e.opts.Parallelism
	if workers < 2 || len(tasks) < 2 {
		for ti := range tasks {
			if err := runTask(e.m, ti); err != nil {
				return nil, nil, err
			}
		}
		return results, stats, nil
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// Buffer and close the queue up front so early-exiting workers can
	// never deadlock the send side.
	work := make(chan int, len(tasks))
	for ti := range tasks {
		work <- ti
	}
	close(work)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := newMatcher(e.base)
			for ti := range work {
				if err := runTask(m, ti); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, nil, err
	default:
		return results, stats, nil
	}
}

// computeStates computes the new state for every target, in parallel when
// configured. computeState only reads the base; mutation (SetState)
// happens sequentially in the caller.
func (e *engine) computeStates(targets []term.GVID, byTarget map[term.GVID][]Update) []*objectbase.State {
	states := make([]*objectbase.State, len(targets))
	workers := e.opts.Parallelism
	if workers < 2 || len(targets) < 2 {
		for i, w := range targets {
			states[i] = e.computeState(w, byTarget[w])
		}
		return states
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	work := make(chan int, len(targets))
	for i := range targets {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				states[i] = e.computeState(targets[i], byTarget[targets[i]])
			}
		}()
	}
	wg.Wait()
	return states
}
