package eval

import (
	"fmt"
	"sort"
	"strings"

	"verlog/internal/objectbase"
	"verlog/internal/term"
)

// HistoryStep is one stage of an object's update process: a version, its
// state, and what changed relative to the previous version. Section 2.2 of
// the paper reads VIDs temporally — "each object-version can be considered
// as a single stage, corresponding to a certain time-step, of the entire
// process of updating the object"; History materializes that reading.
type HistoryStep struct {
	// V is the version identity of this stage (path length 0 = the initial
	// object).
	V term.GVID
	// Kind is the update type that produced this stage (0 for the initial
	// version).
	Kind term.UpdateKind
	// State holds the method applications of the version, sorted, with the
	// system method exists omitted.
	State []term.Fact
	// Added and Removed are the method applications gained and lost
	// relative to the previous stage (nil for the initial version).
	Added   []term.Fact
	Removed []term.Fact
}

// String renders the step compactly.
func (h HistoryStep) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", h.V)
	if len(h.Added)+len(h.Removed) == 0 && h.V.Path.Len() > 0 {
		b.WriteString(" (unchanged)")
	}
	for _, f := range h.Removed {
		fmt.Fprintf(&b, " -%s%s->%s", f.Method, f.Args, f.Result)
	}
	for _, f := range h.Added {
		fmt.Fprintf(&b, " +%s%s->%s", f.Method, f.Args, f.Result)
	}
	return b.String()
}

// History reconstructs the update history of object o from a fixpoint base
// (Result.Result): its versions in temporal order with per-step diffs.
// Version-linear results — everything the engine produces — yield a
// strictly deepening chain; stages the program skipped (e.g. del(mod(o))
// derived directly from o with no mod(o) version) simply do not appear.
func History(result *objectbase.Base, o term.OID) []HistoryStep {
	versions := result.VersionsOf(o)
	sort.Slice(versions, func(i, j int) bool {
		return versions[i].Path.Len() < versions[j].Path.Len()
	})
	var steps []HistoryStep
	var prev map[appKey]term.Fact
	for _, v := range versions {
		state := stateFacts(result, v)
		cur := make(map[appKey]term.Fact, len(state))
		for _, f := range state {
			cur[appKey{f.Method, f.Args, f.Result}] = f
		}
		step := HistoryStep{V: v, Kind: v.Path.Outer(), State: state}
		if prev != nil {
			for k, f := range cur {
				if _, ok := prev[k]; !ok {
					step.Added = append(step.Added, f)
				}
			}
			for k, f := range prev {
				if _, ok := cur[k]; !ok {
					step.Removed = append(step.Removed, f)
				}
			}
			sortFactSlice(step.Added)
			sortFactSlice(step.Removed)
		}
		steps = append(steps, step)
		prev = cur
	}
	return steps
}

type appKey struct {
	method string
	args   term.Args
	result term.OID
}

func stateFacts(b *objectbase.Base, v term.GVID) []term.Fact {
	var out []term.Fact
	b.ForEachFactOf(v, func(f term.Fact) {
		if !f.IsExists() {
			out = append(out, f)
		}
	})
	sortFactSlice(out)
	return out
}

func sortFactSlice(fs []term.Fact) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Compare(fs[j]) < 0 })
}
