// Package core wires the verlog pipeline together: parsing, safety
// checking, stratification, bottom-up evaluation and construction of the
// updated object base. It is the engine behind the public verlog package.
package core

import (
	"fmt"
	"time"

	"verlog/internal/eval"
	"verlog/internal/objectbase"
	"verlog/internal/obs"
	"verlog/internal/parser"
	"verlog/internal/safety"
	"verlog/internal/strata"
	"verlog/internal/term"
)

// Engine applies update-programs to object bases under fixed options.
// The zero value is ready to use with defaults (semi-naive evaluation,
// new-object creation allowed).
type Engine struct {
	opts eval.Options
}

// Option configures an Engine.
type Option func(*Engine)

// WithStrategy selects naive or semi-naive fixpoint iteration.
func WithStrategy(s eval.Strategy) Option { return func(e *Engine) { e.opts.Strategy = s } }

// WithTrace records every fired update in Result.Trace.
func WithTrace() Option { return func(e *Engine) { e.opts.Trace = true } }

// WithMaxIterations bounds T_P applications per stratum.
func WithMaxIterations(n int) Option { return func(e *Engine) { e.opts.MaxIterations = n } }

// WithForbidNewObjects rejects inserts addressing objects unknown to the
// base, restricting the language to exactly the paper's setting.
func WithForbidNewObjects() Option { return func(e *Engine) { e.opts.ForbidNewObjects = true } }

// WithParallelism evaluates rule matching and state computation on n
// workers. The fixpoint is identical to sequential evaluation.
func WithParallelism(n int) Option { return func(e *Engine) { e.opts.Parallelism = n } }

// WithStaticPlanner disables statistics-based join ordering (ablation; the
// fixpoint is identical).
func WithStaticPlanner() Option { return func(e *Engine) { e.opts.StaticPlanner = true } }

// WithInterpreted forces the map-substitution interpreter instead of
// compiled match plans (ablation and differential testing; the fixpoint
// is identical).
func WithInterpreted() Option { return func(e *Engine) { e.opts.Interpreted = true } }

// WithPlans supplies pre-compiled match plans (eval.Compile, or the Plans
// of a previous Result). Plans that do not match the applied program or
// the planner mode are ignored and recompiled, so stale plans are a cache
// miss, never an error.
func WithPlans(cp *eval.CompiledProgram) Option { return func(e *Engine) { e.opts.Plans = cp } }

// WithSpan collects the evaluation as a span tree under sp (see
// internal/obs): safety and stratification checks, each stratum's
// iterations down to per-rule matching, and the copy phase. A nil sp
// disables tracing (the default).
func WithSpan(sp *obs.Span) Option { return func(e *Engine) { e.opts.Span = sp } }

// New returns an Engine with the given options.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Span returns the span configured with WithSpan (nil when tracing is
// off), letting callers above core — the repository's constraint check and
// commit — hang their own children off the same tree.
func (e *Engine) Span() *obs.Span { return e.opts.Span }

// Check validates a program without running it: safety of every rule and
// existence of a stratification fulfilling conditions (a)-(d).
func (e *Engine) Check(p *term.Program) (*strata.Assignment, error) {
	if err := safety.Program(p); err != nil {
		return nil, err
	}
	return strata.Stratify(p)
}

// Apply checks p and evaluates it on ob, returning the full result
// (fixpoint base, updated object base, stratification, statistics).
// ob is not modified.
func (e *Engine) Apply(ob *objectbase.Base, p *term.Program) (*eval.Result, error) {
	safetyStart := time.Now()
	safetySpan := e.opts.Span.StartChild("safety")
	err := safety.Program(p)
	safetySpan.End()
	if err != nil {
		return nil, err
	}
	safetyDur := time.Since(safetyStart)
	res, err := eval.Run(ob, p, e.opts)
	if err != nil {
		return nil, err
	}
	res.Stats.Safety = safetyDur
	return res, nil
}

// ApplySource parses, checks and evaluates program text against object-base
// text. The names are used in error messages.
func (e *Engine) ApplySource(obSrc, obName, progSrc, progName string) (*eval.Result, error) {
	ob, err := parser.ObjectBase(obSrc, obName)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p, err := parser.Program(progSrc, progName)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return e.Apply(ob, p)
}

// Query evaluates a query (a conjunction of body literals in concrete
// syntax) against a base — typically a Result.Result fixpoint, where all
// versions are visible, or a Result.Final updated base.
func Query(base *objectbase.Base, querySrc string) ([]eval.Binding, error) {
	lits, err := parser.Query(querySrc, "query")
	if err != nil {
		return nil, err
	}
	return eval.Query(base, lits)
}
