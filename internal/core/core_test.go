package core

import (
	"strings"
	"testing"

	"verlog/internal/eval"
	"verlog/internal/parser"
)

const (
	obSrc = `
phil.isa -> empl / pos -> mgr / sal -> 4000.
bob.isa -> empl / boss -> phil / sal -> 4200.
`
	progSrc = `
rule1: mod[E].sal -> (S, S') <- E.isa -> empl / pos -> mgr / sal -> S, S' = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S') <- E.isa -> empl / sal -> S, !E.pos -> mgr, S' = S * 1.1.
rule3: del[mod(E)].* <- mod(E).isa -> empl / boss -> B / sal -> SE, mod(B).isa -> empl / sal -> SB, SE > SB.
rule4: ins[mod(E)].isa -> hpe <- mod(E).isa -> empl / sal -> S, S > 4500, !del[mod(E)].isa -> empl.
`
)

func TestApplySource(t *testing.T) {
	res, err := New().ApplySource(obSrc, "ob.vlg", progSrc, "prog.vlg")
	if err != nil {
		t.Fatalf("ApplySource: %v", err)
	}
	out := parser.FormatFacts(res.Final, false)
	if !strings.Contains(out, "phil.sal -> 4600.") {
		t.Errorf("output:\n%s", out)
	}
}

func TestApplySourceParseErrors(t *testing.T) {
	if _, err := New().ApplySource("x.m -> .", "bad-ob.vlg", progSrc, "p"); err == nil ||
		!strings.Contains(err.Error(), "bad-ob.vlg") {
		t.Errorf("bad base: %v", err)
	}
	if _, err := New().ApplySource(obSrc, "ob", "ins[X].m -> ", "bad-prog.vlg"); err == nil ||
		!strings.Contains(err.Error(), "bad-prog.vlg") {
		t.Errorf("bad program: %v", err)
	}
}

func TestCheckRejectsUnsafe(t *testing.T) {
	p, err := parser.Program(`r: ins[X].m -> Y <- X.t -> 1.`, "p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Check(p); err == nil {
		t.Errorf("unsafe program passed Check")
	}
}

func TestCheckRejectsUnstratifiable(t *testing.T) {
	p, err := parser.Program(`r: ins[X].m -> a <- X.t -> 1, !ins(X).m -> a.`, "p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Check(p); err == nil {
		t.Errorf("unstratifiable program passed Check")
	}
}

func TestOptionsArePlumbed(t *testing.T) {
	p, err := parser.Program(progSrc, "p")
	if err != nil {
		t.Fatal(err)
	}
	ob, err := parser.ObjectBase(obSrc, "ob")
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(WithTrace(), WithStrategy(eval.Naive), WithMaxIterations(50)).Apply(ob, p)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(res.Trace) == 0 {
		t.Errorf("WithTrace not plumbed")
	}
	// ForbidNewObjects: an insert on a fresh OID errors.
	p2, _ := parser.Program(`r: ins[brandnew].m -> X <- X.isa -> empl.`, "p2")
	if _, err := New(WithForbidNewObjects()).Apply(ob, p2); err == nil {
		t.Errorf("WithForbidNewObjects not plumbed")
	}
	if _, err := New().Apply(ob, p2); err != nil {
		t.Errorf("default should allow new objects: %v", err)
	}
}

func TestQueryHelper(t *testing.T) {
	ob, err := parser.ObjectBase(obSrc, "ob")
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Query(ob, `E.sal -> S, S > 4000.`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(bs) != 1 || bs[0].String() != "E=bob, S=4200" {
		t.Errorf("bindings = %v", bs)
	}
	if _, err := Query(ob, `E.sal -> `); err == nil {
		t.Errorf("bad query accepted")
	}
}
