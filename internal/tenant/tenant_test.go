package tenant_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"verlog/internal/fsio"
	"verlog/internal/parser"
	"verlog/internal/repository"
	"verlog/internal/tenant"
	"verlog/internal/term"
)

func prog(t *testing.T, src string) *term.Program {
	t.Helper()
	p, err := parser.Program(src, "t.vlg")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

// apply runs one ground insert against the tenant's repository.
func apply(t *testing.T, tn *tenant.Tenant, fact string) {
	t.Helper()
	if _, err := tn.Repo().Apply(prog(t, fact)); err != nil {
		t.Fatalf("apply %q to %s: %v", fact, tn.Name(), err)
	}
}

func TestInvalidNames(t *testing.T) {
	m := tenant.NewManager(t.TempDir())
	defer m.Close()
	for _, name := range []string{
		"", "-leading", "_leading", "UPPER", "has space", "a/b", "..",
		"dot.dot", "é", "0123456789012345678901234567890123456789012345678901234567890123x", // 65 chars
	} {
		if _, err := m.Acquire(name, true); !errors.Is(err, tenant.ErrInvalidName) {
			t.Errorf("Acquire(%q) = %v, want ErrInvalidName", name, err)
		}
		if err := m.Delete(name); !errors.Is(err, tenant.ErrInvalidName) {
			t.Errorf("Delete(%q) = %v, want ErrInvalidName", name, err)
		}
	}
	for _, name := range []string{"a", "default", "acme-corp", "t_1", "0x9", "a123456789012345678901234567890123456789012345678901234567890123"} {
		tn, err := m.Acquire(name, true)
		if err != nil {
			t.Errorf("Acquire(%q) = %v, want ok", name, err)
			continue
		}
		m.Release(tn)
	}
}

func TestAcquireMissingTenant(t *testing.T) {
	m := tenant.NewManager(t.TempDir())
	defer m.Close()
	if _, err := m.Acquire("ghost", false); !errors.Is(err, tenant.ErrNotFound) {
		t.Fatalf("Acquire(ghost) = %v, want ErrNotFound", err)
	}
	// Creating it makes later non-create acquires succeed, even after the
	// manager forgets it (fresh manager over the same root).
	root := m.Root()
	tn, err := m.Acquire("ghost", true)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	m.Release(tn)
	m.Close()
	m2 := tenant.NewManager(root)
	defer m2.Close()
	tn, err = m2.Acquire("ghost", false)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	m2.Release(tn)
}

// TestConcurrentFirstOpen: many goroutines race the first Acquire of one
// tenant; exactly one open must win and everyone must see that instance.
func TestConcurrentFirstOpen(t *testing.T) {
	m := tenant.NewManager(t.TempDir())
	defer m.Close()
	const workers = 32
	var wg sync.WaitGroup
	got := make([]*tenant.Tenant, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn, err := m.Acquire("shared", true)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			got[i] = tn
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if got[i] != got[0] {
			t.Fatalf("worker %d got a different tenant instance", i)
		}
	}
	_, opens, _, _ := m.Stats()
	if opens != 1 {
		t.Fatalf("opens = %d, want 1 (single-flight violated)", opens)
	}
	for _, tn := range got {
		m.Release(tn)
	}
}

// TestLRUEviction: with a cap of 2, touching a third tenant evicts the
// least-recently-used idle one, and reacquiring the victim reopens it
// from disk with its state intact.
func TestLRUEviction(t *testing.T) {
	m := tenant.NewManager(t.TempDir(), tenant.WithMaxOpen(2))
	defer m.Close()
	open := func(name string) *tenant.Tenant {
		tn, err := m.Acquire(name, true)
		if err != nil {
			t.Fatalf("Acquire(%s): %v", name, err)
		}
		return tn
	}
	a := open("a")
	apply(t, a, `ins[x].owner -> a.`)
	m.Release(a)
	b := open("b")
	m.Release(b)
	c := open("c") // must evict a (LRU)
	m.Release(c)
	_, _, evictions, maxRes := m.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if maxRes > 2 {
		t.Fatalf("max resident = %d, exceeds cap 2", maxRes)
	}
	// The evicted repository refuses further use...
	if _, err := a.Repo().Apply(prog(t, `ins[x].stale -> yes.`)); !errors.Is(err, repository.ErrClosed) {
		t.Fatalf("apply to evicted tenant = %v, want repository.ErrClosed", err)
	}
	// ...and reacquiring reopens from disk with the data intact.
	a2 := open("a")
	defer m.Release(a2)
	if a2 == a {
		t.Fatal("reacquire returned the evicted instance")
	}
	head, err := a2.Repo().Head()
	if err != nil {
		t.Fatalf("Head: %v", err)
	}
	want := term.NewFact(term.GVID{Object: term.Sym("x")}, "owner", term.Sym("a"))
	if !head.Has(want) {
		t.Fatalf("reopened tenant lost its data:\n%s", parser.FormatFacts(head, true))
	}
}

// TestBusyTenantNotEvicted: a tenant with a reference held survives
// eviction pressure; when every resident tenant is busy, Acquire of a new
// one fails with ErrTooMany instead of exceeding the cap.
func TestBusyTenantNotEvicted(t *testing.T) {
	m := tenant.NewManager(t.TempDir(), tenant.WithMaxOpen(1))
	defer m.Close()
	a, err := m.Acquire("a", true)
	if err != nil {
		t.Fatalf("Acquire(a): %v", err)
	}
	if _, err := m.Acquire("b", true); !errors.Is(err, tenant.ErrTooMany) {
		t.Fatalf("Acquire(b) with a busy = %v, want ErrTooMany", err)
	}
	apply(t, a, `ins[x].alive -> yes.`) // still usable: not evicted
	m.Release(a)
	b, err := m.Acquire("b", true)
	if err != nil {
		t.Fatalf("Acquire(b) after release: %v", err)
	}
	m.Release(b)
}

// TestEvictionRacesApply: applies hammer a set of tenants while acquires
// of other tenants force constant eviction. Run under -race. An apply may
// never observe ErrClosed while its caller holds a reference.
func TestEvictionRacesApply(t *testing.T) {
	m := tenant.NewManager(t.TempDir(), tenant.WithMaxOpen(3))
	defer m.Close()
	const (
		tenants = 8
		workers = 8
		rounds  = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("t%d", (w+i)%tenants)
				tn, err := m.Acquire(name, true)
				if errors.Is(err, tenant.ErrTooMany) {
					continue // all residents busy; acceptable under pressure
				}
				if err != nil {
					t.Errorf("Acquire(%s): %v", name, err)
					return
				}
				fact := fmt.Sprintf(`ins[w%d].round -> %d.`, w, i)
				if _, err := tn.Repo().Apply(prog(t, fact)); err != nil {
					t.Errorf("apply to %s with ref held: %v", name, err)
				}
				m.Release(tn)
			}
		}(w)
	}
	wg.Wait()
	_, _, evictions, maxRes := m.Stats()
	if maxRes > 3 {
		t.Fatalf("max resident = %d, exceeds cap 3", maxRes)
	}
	if evictions == 0 {
		t.Fatalf("workload produced no evictions; test exerted nothing")
	}
}

// TestEvictionPreservesIdempotency: an idempotency key consumed before
// eviction still replays (not re-executes) after the tenant is reopened,
// because keys are rebuilt from the journal during recovery.
func TestEvictionPreservesIdempotency(t *testing.T) {
	m := tenant.NewManager(t.TempDir(), tenant.WithMaxOpen(1))
	defer m.Close()
	a, err := m.Acquire("a", true)
	if err != nil {
		t.Fatalf("Acquire(a): %v", err)
	}
	p := prog(t, `ins[x].hits -> here.`)
	_, e1, replayed, err := a.Repo().ApplyKey(p, "key-1")
	if err != nil || replayed {
		t.Fatalf("first ApplyKey: seq=%d replayed=%v err=%v", e1.Seq, replayed, err)
	}
	m.Release(a)
	// Force eviction by opening another tenant past the cap of 1.
	b, err := m.Acquire("b", true)
	if err != nil {
		t.Fatalf("Acquire(b): %v", err)
	}
	m.Release(b)
	if _, _, evictions, _ := m.Stats(); evictions == 0 {
		t.Fatal("tenant a was not evicted")
	}
	a2, err := m.Acquire("a", false)
	if err != nil {
		t.Fatalf("reacquire a: %v", err)
	}
	defer m.Release(a2)
	_, e2, replayed, err := a2.Repo().ApplyKey(p, "key-1")
	if err != nil {
		t.Fatalf("replay ApplyKey: %v", err)
	}
	if !replayed || e2.Seq != e1.Seq {
		t.Fatalf("after eviction+reopen: replayed=%v seq=%d, want replay of seq %d", replayed, e2.Seq, e1.Seq)
	}
}

// TestCrashIsolatedToOneTenant: a crash mid-apply in one tenant must not
// corrupt its neighbors — each tenant has its own journal. The fault
// filesystem counts durable operations across the whole manager, so we
// populate two tenants, arm the failpoint, and crash the third.
func TestCrashIsolatedToOneTenant(t *testing.T) {
	root := t.TempDir()
	f := fsio.NewFault()
	m := tenant.NewManager(root, tenant.WithFS(f))
	seed := func(name, fact string) {
		tn, err := m.Acquire(name, true)
		if err != nil {
			t.Fatalf("Acquire(%s): %v", name, err)
		}
		apply(t, tn, fact)
		m.Release(tn)
	}
	seed("alpha", `ins[x].home -> alpha.`)
	seed("beta", `ins[x].home -> beta.`)

	// Crash a few durable ops into tenant gamma's first apply.
	f.FailAt(f.Count()+3, true)
	tn, err := m.Acquire("gamma", true)
	var applyErr error
	if err == nil {
		_, applyErr = tn.Repo().Apply(prog(t, `ins[x].home -> gamma.`))
		m.Release(tn)
	} else {
		applyErr = err
	}
	if applyErr == nil {
		t.Fatal("gamma's apply survived the armed failpoint")
	}
	if !errors.Is(applyErr, fsio.ErrInjected) {
		t.Fatalf("gamma failed with a real error: %v", applyErr)
	}
	m.Close()

	// "Reboot": a fresh manager over the same root on the real filesystem.
	m2 := tenant.NewManager(root)
	defer m2.Close()
	for _, name := range []string{"alpha", "beta"} {
		tn, err := m2.Acquire(name, false)
		if err != nil {
			t.Fatalf("reopen %s after gamma's crash: %v", name, err)
		}
		if err := tn.Repo().Verify(); err != nil {
			t.Fatalf("%s corrupted by gamma's crash: %v", name, err)
		}
		head, err := tn.Repo().Head()
		if err != nil {
			t.Fatalf("%s Head: %v", name, err)
		}
		want := term.NewFact(term.GVID{Object: term.Sym("x")}, "home", term.Sym(name))
		if !head.Has(want) {
			t.Fatalf("%s lost its fact:\n%s", name, parser.FormatFacts(head, true))
		}
	}
	// Gamma itself either never became a repository or recovers cleanly.
	if tn, err := m2.Acquire("gamma", false); err == nil {
		if verr := tn.Repo().Verify(); verr != nil {
			t.Fatalf("gamma recovered inconsistently: %v", verr)
		}
		m2.Release(tn)
	} else if !errors.Is(err, tenant.ErrNotFound) {
		t.Fatalf("reopening gamma: %v", err)
	}
}

// TestDeleteLifecycle: busy tenants refuse deletion; idle ones are
// removed from disk; deleting a never-resident tenant removes its dir.
func TestDeleteLifecycle(t *testing.T) {
	m := tenant.NewManager(t.TempDir())
	defer m.Close()
	a, err := m.Acquire("a", true)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := m.Delete("a"); !errors.Is(err, tenant.ErrBusy) {
		t.Fatalf("Delete busy = %v, want ErrBusy", err)
	}
	m.Release(a)
	if err := m.Delete("a"); err != nil {
		t.Fatalf("Delete idle: %v", err)
	}
	if _, err := m.Acquire("a", false); !errors.Is(err, tenant.ErrNotFound) {
		t.Fatalf("Acquire after delete = %v, want ErrNotFound", err)
	}
	if err := m.Delete("never"); !errors.Is(err, tenant.ErrNotFound) {
		t.Fatalf("Delete missing = %v, want ErrNotFound", err)
	}
}

// TestList: disk-only and resident tenants both appear; only resident
// ones report a seq.
func TestList(t *testing.T) {
	m := tenant.NewManager(t.TempDir(), tenant.WithMaxOpen(1))
	defer m.Close()
	for _, name := range []string{"one", "two"} {
		tn, err := m.Acquire(name, true)
		if err != nil {
			t.Fatalf("Acquire(%s): %v", name, err)
		}
		apply(t, tn, `ins[x].k -> v.`)
		m.Release(tn)
	}
	infos, err := m.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(infos) != 2 || infos[0].Name != "one" || infos[1].Name != "two" {
		t.Fatalf("List = %+v", infos)
	}
	for _, info := range infos {
		if info.SizeBytes == 0 {
			t.Errorf("%s: size 0", info.Name)
		}
		if info.Resident {
			if info.Seq == nil || *info.Seq != 1 {
				t.Errorf("%s resident without seq 1: %+v", info.Name, info)
			}
		} else if info.Seq != nil {
			t.Errorf("%s evicted but reports a seq", info.Name)
		}
	}
	if infos[0].Resident || !infos[1].Resident {
		t.Fatalf("with cap 1, only the last-touched tenant is resident: %+v", infos)
	}
}

// TestRepositoryClose: Close quiesces — later mutations fail with
// ErrClosed while reads keep serving the published head.
func TestRepositoryClose(t *testing.T) {
	dir := t.TempDir() + "/repo"
	initial, err := parser.ObjectBase(`henry.isa -> empl / sal -> 1000.`, "init.vlg")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := repository.Init(dir, initial)
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	if _, err := r.Apply(prog(t, `ins[henry].level -> 3.`)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := r.Apply(prog(t, `ins[henry].level -> 4.`)); !errors.Is(err, repository.ErrClosed) {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}
	if err := r.Compact(); !errors.Is(err, repository.ErrClosed) {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
	if _, err := r.Entries(); !errors.Is(err, repository.ErrClosed) {
		t.Fatalf("Entries after Close = %v, want ErrClosed", err)
	}
	head, err := r.Head()
	if err != nil {
		t.Fatalf("Head after Close: %v", err)
	}
	want := term.NewFact(term.GVID{Object: term.Sym("henry")}, "level", term.Int(3))
	if !head.Has(want) {
		t.Fatalf("closed head lost data:\n%s", parser.FormatFacts(head, true))
	}
	// Reopening recovers everything.
	r2, err := repository.Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	if h, _ := r2.Head(); !h.Equal(head) {
		t.Fatal("reopened head differs from closed head")
	}
}
