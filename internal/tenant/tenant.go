// Package tenant adds a namespace layer over repositories: a Manager maps
// tenant names to lazily-opened repository.Repository instances, each with
// its own data directory (<root>/<name>/), journal, constraints and
// idempotency keys. The paper's object bases are perfectly partitionable —
// OIDs never cross bases — so tenants share nothing but the process.
//
// Residency is bounded: at most MaxOpen repositories are resident at once.
// Opening a tenant past the cap evicts the least-recently-used idle one —
// a clean close that quiesces the repository's commit pipeline (the
// pause/resume condvar of DESIGN.md §9), drops the resident state, and
// keeps the directory; the next Acquire recovers it through the normal
// Open path, journaled idempotency keys included. A tenant with requests
// in flight (refs > 0) is never evicted; when every resident tenant is
// busy, Acquire of a new one fails with ErrTooMany rather than exceeding
// the cap.
//
// Concurrent first-opens of one tenant are single-flight: the first
// Acquire creates the entry and runs recovery, later ones wait on it —
// one Open, never two repositories over one directory.
package tenant

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"

	"verlog/internal/eval"
	"verlog/internal/fsio"
	"verlog/internal/objectbase"
	"verlog/internal/obs"
	"verlog/internal/repository"
)

// Name grammar: DNS-label-like, 1-64 chars, starts alphanumeric.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-_]{0,63}$`)

// ValidName reports whether name satisfies the tenant-name grammar
// [a-z0-9][a-z0-9-_]{0,63}. Valid names are safe as path components.
func ValidName(name string) bool { return nameRE.MatchString(name) }

var (
	// ErrInvalidName reports a tenant name outside the grammar.
	ErrInvalidName = errors.New("tenant: invalid tenant name")
	// ErrNotFound reports a tenant with no repository directory.
	ErrNotFound = errors.New("tenant: no such tenant")
	// ErrTooMany reports that the open-tenant cap is reached and every
	// resident tenant is busy, so nothing can be evicted.
	ErrTooMany = errors.New("tenant: too many open tenants")
	// ErrBusy reports a Delete of a tenant with requests in flight.
	ErrBusy = errors.New("tenant: tenant is busy")
	// ErrPinned reports a Delete of an adopted tenant.
	ErrPinned = errors.New("tenant: tenant is pinned")
	// ErrClosed reports an operation on a closed Manager.
	ErrClosed = errors.New("tenant: manager is closed")
	// ErrNoRoot reports a create on a Manager without a root directory
	// (only adopted tenants exist then).
	ErrNoRoot = errors.New("tenant: no tenants root configured")
)

// Tenant is one resident namespace: its repository plus the server-scoped
// state that lives and dies with residency.
type Tenant struct {
	name string
	repo *repository.Repository

	// LastApply retains the most recent apply's fixpoint for the
	// history/explain endpoints. It is resident state: eviction drops it
	// with the rest of the tenant.
	LastApply atomic.Pointer[eval.Result]

	// Everything below is owned by the Manager and guarded by its mu.
	refs    int
	pinned  bool          // adopted tenants are never evicted
	elem    *list.Element // position in the LRU list (nil when pinned)
	opening chan struct{} // closed once the open attempt finished
	openErr error
	closing bool          // evict/delete in progress; entry is a tombstone
	done    chan struct{} // closed once the tombstone is gone
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Repo returns the tenant's repository. Valid only while the caller holds
// an Acquire reference.
func (t *Tenant) Repo() *repository.Repository { return t.repo }

// Option configures a Manager.
type Option func(*Manager)

// WithMaxOpen bounds resident repositories (0 or negative = unbounded).
// Pinned (adopted) tenants count toward the bound but are never evicted.
func WithMaxOpen(n int) Option { return func(m *Manager) { m.maxOpen = n } }

// WithFS substitutes the filesystem tenant repositories are opened on
// (fault injection in tests).
func WithFS(fs fsio.FS) Option { return func(m *Manager) { m.fs = fs } }

// Manager maps tenant names to resident repositories with LRU residency.
// All methods are safe for concurrent use.
type Manager struct {
	root    string
	maxOpen int
	fs      fsio.FS

	mu       sync.Mutex
	resident map[string]*Tenant
	lru      *list.List // *Tenant, front = most recently used
	closed   bool

	opens       atomic.Int64
	evictions   atomic.Int64
	maxResident int

	reg *obs.Registry
}

// NewManager returns a Manager creating tenant directories under root. An
// empty root serves adopted tenants only: Acquire of anything else fails.
func NewManager(root string, opts ...Option) *Manager {
	m := &Manager{
		root:     root,
		fs:       fsio.OS,
		resident: make(map[string]*Tenant),
		lru:      list.New(),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Root returns the tenants root directory ("" when adopted-only).
func (m *Manager) Root() string { return m.root }

// MaxOpen returns the resident-repository bound (0 = unbounded).
func (m *Manager) MaxOpen() int { return m.maxOpen }

// Instrument wires the manager's residency metrics into reg:
// verlog_tenants_resident, verlog_tenant_opens_total and
// verlog_tenant_evictions_total.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.mu.Lock()
	m.reg = reg
	m.mu.Unlock()
	reg.RegisterCollector(func() {
		m.mu.Lock()
		n := len(m.resident)
		m.mu.Unlock()
		reg.Gauge("verlog_tenants_resident", "Tenant repositories currently resident.").Set(float64(n))
	})
}

// Stats reports the manager's lifetime counters.
func (m *Manager) Stats() (resident int, opens, evictions int64, maxResident int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.resident), m.opens.Load(), m.evictions.Load(), m.maxResident
}

// Pressure reports residency pressure for the readiness probe: how many
// tenants are resident and how many of those are busy (requests in
// flight, pinned, or mid-close — i.e. not evictable). When MaxOpen > 0,
// resident == cap and busy == resident together mean the next Acquire of
// a non-resident tenant would fail with ErrTooMany.
func (m *Manager) Pressure() (resident, busy int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.resident {
		if t.refs > 0 || t.pinned || t.closing {
			busy++
		}
	}
	return len(m.resident), busy
}

// dirOf returns the tenant's directory. Callers validate name first, so
// the join cannot traverse out of the root.
func (m *Manager) dirOf(name string) string { return filepath.Join(m.root, name) }

// Adopt installs an already-open repository as a pinned resident tenant:
// it is never evicted and survives Close of the manager's other tenants
// (the caller owns its lifecycle). The server adopts its -dir repository
// as the "default" tenant this way.
func (m *Manager) Adopt(name string, repo *repository.Repository) *Tenant {
	t := &Tenant{name: name, repo: repo, pinned: true, opening: make(chan struct{})}
	close(t.opening)
	m.mu.Lock()
	m.resident[name] = t
	if len(m.resident) > m.maxResident {
		m.maxResident = len(m.resident)
	}
	m.mu.Unlock()
	return t
}

// Acquire returns the named tenant with a reference held; the caller must
// Release it. A non-resident tenant is opened from its directory — created
// first (empty base) when create is set — evicting the least-recently-used
// idle tenant if the residency cap is reached. Errors: ErrInvalidName,
// ErrNotFound (no directory and !create), ErrTooMany (cap reached, all
// resident tenants busy), ErrClosed.
func (m *Manager) Acquire(name string, create bool) (*Tenant, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q (want [a-z0-9][a-z0-9-_]{0,63})", ErrInvalidName, name)
	}
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, ErrClosed
		}
		if t, ok := m.resident[name]; ok {
			if t.closing {
				// An eviction or delete is mid-flight; wait for the
				// directory to be released, then retry.
				done := t.done
				m.mu.Unlock()
				<-done
				continue
			}
			t.refs++
			if t.elem != nil {
				m.lru.MoveToFront(t.elem)
			}
			m.mu.Unlock()
			<-t.opening
			if t.openErr != nil {
				// The single-flight open failed; the opener already removed
				// the entry, our reference dies with it.
				return nil, t.openErr
			}
			return t, nil
		}
		// Not resident: make room, then open single-flight.
		if m.maxOpen > 0 && len(m.resident) >= m.maxOpen {
			victim := m.evictableLocked()
			if victim == nil {
				if ch := m.closingLocked(); ch != nil {
					m.mu.Unlock()
					<-ch
					continue
				}
				n := len(m.resident)
				m.mu.Unlock()
				return nil, fmt.Errorf("%w: %d resident, all busy (cap %d)", ErrTooMany, n, m.maxOpen)
			}
			victim.closing = true
			victim.done = make(chan struct{})
			m.lru.Remove(victim.elem)
			victim.elem = nil
			m.mu.Unlock()
			// Clean close outside the lock: quiesce the commit pipeline,
			// drop the resident state, keep the directory.
			victim.repo.Close()
			m.mu.Lock()
			delete(m.resident, victim.name)
			close(victim.done)
			reg := m.reg
			m.mu.Unlock()
			m.evictions.Add(1)
			if reg != nil {
				reg.Counter("verlog_tenant_evictions_total", "Idle tenant repositories evicted by the LRU residency cap.").Inc()
			}
			continue
		}
		t := &Tenant{name: name, refs: 1, opening: make(chan struct{})}
		m.resident[name] = t
		t.elem = m.lru.PushFront(t)
		if len(m.resident) > m.maxResident {
			m.maxResident = len(m.resident)
		}
		m.mu.Unlock()

		repo, err := m.open(name, create)
		m.mu.Lock()
		if err != nil {
			delete(m.resident, name)
			if t.elem != nil {
				m.lru.Remove(t.elem)
				t.elem = nil
			}
			t.openErr = err
		} else {
			t.repo = repo
			m.opens.Add(1)
		}
		close(t.opening)
		reg := m.reg
		m.mu.Unlock()
		if err == nil && reg != nil {
			reg.Counter("verlog_tenant_opens_total", "Tenant repositories opened (lazy opens and creations).").Inc()
		}
		if err != nil {
			return nil, err
		}
		return t, nil
	}
}

// open opens (or creates) the tenant's repository; no manager locks held.
func (m *Manager) open(name string, create bool) (*repository.Repository, error) {
	if m.root == "" {
		if create {
			return nil, ErrNoRoot
		}
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	dir := m.dirOf(name)
	if _, err := m.fs.Stat(filepath.Join(dir, "snapshot.bin")); err != nil {
		if !create {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return repository.InitFS(dir, objectbase.New(), m.fs)
	}
	return repository.OpenFS(dir, m.fs)
}

// Release returns a reference taken by Acquire. The tenant becomes
// evictable when its last reference is released.
func (m *Manager) Release(t *Tenant) {
	if t == nil {
		return
	}
	m.mu.Lock()
	if t.refs > 0 {
		t.refs--
	}
	m.mu.Unlock()
}

// evictableLocked returns the least-recently-used idle tenant, or nil.
func (m *Manager) evictableLocked() *Tenant {
	for e := m.lru.Back(); e != nil; e = e.Prev() {
		t := e.Value.(*Tenant)
		if t.refs == 0 && !t.closing && t.openErr == nil && opened(t) {
			return t
		}
	}
	return nil
}

// closingLocked returns the done channel of some in-flight eviction, or
// nil when none is running.
func (m *Manager) closingLocked() chan struct{} {
	for _, t := range m.resident {
		if t.closing {
			return t.done
		}
	}
	return nil
}

// opened reports whether the tenant's single-flight open has finished.
func opened(t *Tenant) bool {
	select {
	case <-t.opening:
		return true
	default:
		return false
	}
}

// Info is one row of List: a tenant on disk (or adopted), its residency,
// and — when resident — its journal head seq.
type Info struct {
	Name     string `json:"name"`
	Resident bool   `json:"resident"`
	// Seq is the tenant's published journal head seq; present only while
	// the tenant is resident (listing must not fault every tenant in).
	Seq *int `json:"seq,omitempty"`
	// Facts is the published head's fact count; resident tenants only.
	Facts *int `json:"facts,omitempty"`
	// SizeBytes is the on-disk footprint of the tenant's directory
	// (adopted tenants living outside the root report 0).
	SizeBytes int64 `json:"size_bytes"`
}

// List enumerates every tenant: the directories under the root plus the
// adopted residents, sorted by name. Listing is cheap by design — it reads
// directory metadata and the resident heads, and never opens a repository.
func (m *Manager) List() ([]Info, error) {
	names := map[string]bool{}
	if m.root != "" {
		entries, err := os.ReadDir(m.root)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("tenant: %w", err)
		}
		for _, e := range entries {
			if e.IsDir() && ValidName(e.Name()) {
				names[e.Name()] = true
			}
		}
	}
	m.mu.Lock()
	res := make(map[string]*Tenant, len(m.resident))
	for n, t := range m.resident {
		if !t.closing && t.openErr == nil && opened(t) {
			res[n] = t
			names[n] = true
		}
	}
	m.mu.Unlock()
	out := make([]Info, 0, len(names))
	for n := range names {
		info := Info{Name: n}
		if t := res[n]; t != nil {
			info.Resident = true
			_, seq := t.repo.Snapshot()
			head, _ := t.repo.Head()
			facts := head.Size()
			info.Seq, info.Facts = &seq, &facts
			info.SizeBytes = dirSize(t.repo.Dir())
		} else {
			info.SizeBytes = dirSize(m.dirOf(n))
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// dirSize sums the sizes of the regular files directly in dir (repository
// directories are flat); 0 on any error.
func dirSize(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}

// Delete closes the named tenant and removes its directory. A tenant with
// references in flight is ErrBusy; a pinned (adopted) tenant cannot be
// deleted. Deleting a tenant that only exists on disk removes the
// directory without opening it.
func (m *Manager) Delete(name string) error {
	if !ValidName(name) {
		return fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return ErrClosed
		}
		t, ok := m.resident[name]
		if !ok {
			m.mu.Unlock()
			if m.root == "" {
				return fmt.Errorf("%w: %q", ErrNotFound, name)
			}
			dir := m.dirOf(name)
			if _, err := os.Stat(dir); err != nil {
				return fmt.Errorf("%w: %q", ErrNotFound, name)
			}
			return os.RemoveAll(dir)
		}
		if t.closing {
			done := t.done
			m.mu.Unlock()
			<-done
			continue
		}
		if t.pinned {
			m.mu.Unlock()
			return fmt.Errorf("%w: %q cannot be deleted", ErrPinned, name)
		}
		if t.refs > 0 {
			m.mu.Unlock()
			return fmt.Errorf("%w: %q has %d request(s) in flight", ErrBusy, name, t.refs)
		}
		if !opened(t) {
			done := t.opening
			m.mu.Unlock()
			<-done
			continue
		}
		t.closing = true
		t.done = make(chan struct{})
		if t.elem != nil {
			m.lru.Remove(t.elem)
			t.elem = nil
		}
		m.mu.Unlock()
		var rmErr error
		if t.openErr == nil {
			t.repo.Close()
			rmErr = os.RemoveAll(t.repo.Dir())
		}
		m.mu.Lock()
		delete(m.resident, name)
		close(t.done)
		m.mu.Unlock()
		return rmErr
	}
}

// Close shuts the manager down: no further Acquires succeed and every
// resident non-pinned repository is closed (quiesced; in-flight applies
// fail with repository.ErrClosed). Adopted repositories are left open —
// their owner closes them.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	var repos []*repository.Repository
	for _, t := range m.resident {
		if !t.pinned && t.openErr == nil && opened(t) && !t.closing {
			repos = append(repos, t.repo)
		}
	}
	m.mu.Unlock()
	for _, r := range repos {
		r.Close()
	}
}
