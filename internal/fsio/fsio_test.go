package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, fs FS, name, data string, sync bool) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("Create %s: %v", name, err)
	}
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatalf("Write %s: %v", name, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatalf("Sync %s: %v", name, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close %s: %v", name, err)
	}
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "a.txt")
	write(t, OS, name, "hello", true)
	if err := OS.Rename(name, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	b, err := OS.ReadFile(filepath.Join(dir, "b.txt"))
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	names, err := OS.ReadDir(dir)
	if err != nil || len(names) != 1 || names[0] != "b.txt" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := OS.Truncate(filepath.Join(dir, "b.txt"), 2); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	b, _ = OS.ReadFile(filepath.Join(dir, "b.txt"))
	if string(b) != "he" {
		t.Fatalf("after truncate = %q", b)
	}
}

// TestFaultDropsUnsynced: a crash after an unsynced write reverts the file
// to its last synced prefix; a synced write survives.
func TestFaultDropsUnsynced(t *testing.T) {
	dir := t.TempDir()
	f := NewFault()
	synced := filepath.Join(dir, "synced")
	loose := filepath.Join(dir, "loose")
	write(t, f, synced, "durable", true)
	write(t, f, loose, "gone", false)
	// Arm the failpoint at the very next operation.
	f.FailAt(f.Count()+1, false)
	if _, err := f.Create(filepath.Join(dir, "next")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Create err = %v, want ErrInjected", err)
	}
	if !f.Crashed() {
		t.Fatal("not crashed")
	}
	if b, _ := os.ReadFile(synced); string(b) != "durable" {
		t.Errorf("synced file = %q", b)
	}
	if b, _ := os.ReadFile(loose); string(b) != "" {
		t.Errorf("unsynced file survived crash: %q", b)
	}
	// Everything after the crash fails, including reads.
	if _, err := f.ReadFile(synced); !errors.Is(err, ErrInjected) {
		t.Errorf("post-crash read err = %v", err)
	}
	if err := f.Rename(synced, loose); !errors.Is(err, ErrInjected) {
		t.Errorf("post-crash rename err = %v", err)
	}
}

// TestFaultTear: a crash landing on a write with tear set persists half of
// that write.
func TestFaultTear(t *testing.T) {
	dir := t.TempDir()
	f := NewFault()
	name := filepath.Join(dir, "a")
	h, err := f.Create(name)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	f.FailAt(f.Count()+1, true)
	if _, err := h.Write([]byte("abcdefgh")); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	h.Close()
	if b, _ := os.ReadFile(name); string(b) != "abcd" {
		t.Errorf("torn file = %q, want %q", b, "abcd")
	}
}

// TestFaultAppendKeepsDurablePrefix: appends after a sync are lost in a
// crash, the synced prefix survives.
func TestFaultAppendKeepsDurablePrefix(t *testing.T) {
	dir := t.TempDir()
	f := NewFault()
	name := filepath.Join(dir, "log")
	write(t, f, name, "one\n", true)
	a, err := f.Append(name)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := a.Write([]byte("two\n")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	a.Close()
	f.FailAt(f.Count()+1, false)
	f.SyncDir(dir)
	if b, _ := os.ReadFile(name); string(b) != "one\n" {
		t.Errorf("log after crash = %q, want %q", b, "one\n")
	}
}

// TestFaultRenameTransfersTracking: the durable prefix follows the file
// across a rename (the tmp-then-rename pattern).
func TestFaultRenameTransfersTracking(t *testing.T) {
	dir := t.TempDir()
	f := NewFault()
	tmp := filepath.Join(dir, "x.tmp")
	final := filepath.Join(dir, "x")
	write(t, f, tmp, "payload", true)
	if err := f.Rename(tmp, final); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	f.FailAt(f.Count()+1, false)
	f.SyncDir(dir)
	if b, _ := os.ReadFile(final); string(b) != "payload" {
		t.Errorf("renamed file after crash = %q", b)
	}
}

// TestFaultUnsyncedRenameIsTruncated: renaming an unsynced file and then
// crashing loses the unsynced bytes — the hazard fsync-before-rename
// guards against.
func TestFaultUnsyncedRenameIsTruncated(t *testing.T) {
	dir := t.TempDir()
	f := NewFault()
	tmp := filepath.Join(dir, "y.tmp")
	final := filepath.Join(dir, "y")
	write(t, f, tmp, "payload", false)
	if err := f.Rename(tmp, final); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	f.FailAt(f.Count()+1, false)
	f.SyncDir(dir)
	if b, _ := os.ReadFile(final); string(b) != "" {
		t.Errorf("unsynced renamed file survived crash: %q", b)
	}
}

// TestFaultCountIsStable: the same workload passes the same number of
// fault points, so a sweep can enumerate them.
func TestFaultCountIsStable(t *testing.T) {
	run := func() int {
		dir := t.TempDir()
		f := NewFault()
		write(t, f, filepath.Join(dir, "a"), "1", true)
		write(t, f, filepath.Join(dir, "b"), "2", false)
		f.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "c"))
		f.SyncDir(dir)
		return f.Count()
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Fatalf("counts differ: %d vs %d", a, b)
	}
}
