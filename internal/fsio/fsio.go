// Package fsio is the small filesystem abstraction under the repository's
// durability layer. It exposes exactly the operations the journal and the
// snapshot writer need — create, append, sync, rename, remove, truncate,
// directory sync — behind an interface with two implementations:
//
//   - OS: the real filesystem with real fsync semantics.
//   - Fault: the real filesystem plus an injectable failpoint that
//     simulates power loss for crash-safety tests (package repository's
//     crash sweep). Every durable operation is one fault point; at the
//     chosen point the "machine dies": data written but never synced is
//     dropped, the dying write can be torn mid-record, and every later
//     operation fails with ErrInjected.
//
// The split is what makes the repository's fsync discipline testable: the
// crash sweep runs a workload once per fault point and asserts that
// reopening the directory always recovers a consistent state.
package fsio

import (
	"errors"
	"io"
	gofs "io/fs"
	"os"
	"syscall"
)

// File is a writable file handle. Sync must not return until the data is
// durable on the underlying device.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface of the durability layer. Reads never need
// fault points (a reopened process only sees what survived), but they go
// through the interface too so a faulted run observes its own disk state.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Append opens an existing file for appending.
	Append(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadFile returns the contents of name.
	ReadFile(name string) ([]byte, error)
	// Stat describes name.
	Stat(name string) (gofs.FileInfo, error)
	// ReadDir lists the entry names of dir.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate resizes name to size and makes the new size durable.
	Truncate(name string, size int64) error
	// SyncDir makes directory entries (creates, renames, removes) durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_APPEND|os.O_WRONLY, 0o644)
}

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Stat(name string) (gofs.FileInfo, error) { return os.Stat(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(des))
	for i, de := range des {
		names[i] = de.Name()
	}
	return names, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error {
	if err := os.Truncate(name, size); err != nil {
		return err
	}
	f, err := os.OpenFile(name, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems cannot sync directories; the rename itself is
		// still ordered after the file sync, which is the part that matters.
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return err
	}
	return nil
}
