package fsio

import (
	"errors"
	"fmt"
	"io"
	gofs "io/fs"
	"os"
	"sync"
)

// ErrInjected is the error every operation returns once an injected crash
// has fired. Code under test must propagate it (wrapped is fine); the
// crash sweep uses errors.Is to tell an injected crash from a real bug.
var ErrInjected = errors.New("fsio: injected crash (simulated power loss)")

// Fault is a filesystem that dies at a chosen operation, modeling power
// loss. It operates on real paths (so a test can reopen the directory
// with OS afterwards) with write-through semantics plus durability
// tracking: for every file it has written, it remembers how many leading
// bytes were made durable by Sync. When the failpoint fires, each tracked
// file is truncated back to its durable prefix — unsynced data is lost
// exactly as it would be on a real power cut — and all later operations
// return ErrInjected.
//
// Simplifications versus real hardware: renames and removes become
// durable immediately (the repository nevertheless issues the SyncDir
// calls a real crash would need), and a torn write persists the first
// half of the dying write along with earlier unsynced bytes of the same
// file, modeling an interrupted flush.
type Fault struct {
	mu      sync.Mutex
	count   int
	failAt  int
	tear    bool
	crashed bool
	durable map[string]int64
}

// NewFault returns a fault filesystem with no failpoint armed.
func NewFault() *Fault { return &Fault{durable: make(map[string]int64)} }

// FailAt arms the failpoint: the n-th durable operation (1-based) crashes
// the filesystem. With tear set, a crash landing on a write persists half
// of that write, producing a torn record. n <= 0 disarms.
func (f *Fault) FailAt(n int, tear bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt, f.tear = n, tear
}

// Count reports how many fault points have been passed so far. A run with
// the failpoint disarmed measures how many points a workload has.
func (f *Fault) Count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// Crashed reports whether the failpoint has fired.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step passes one fault point; f.mu must be held. It returns ErrInjected
// if the filesystem is dead or dies at this point.
func (f *Fault) step() error {
	if f.crashed {
		return ErrInjected
	}
	f.count++
	if f.failAt > 0 && f.count >= f.failAt {
		f.crashNow()
		return ErrInjected
	}
	return nil
}

// crashNow drops all unsynced data; f.mu must be held.
func (f *Fault) crashNow() {
	f.crashed = true
	for path, n := range f.durable {
		// Missing files (already renamed or removed) are fine to skip.
		if st, err := os.Stat(path); err == nil && st.Size() > n {
			os.Truncate(path, n)
		}
	}
}

// dead reports (under lock) whether the filesystem has crashed; reads use
// it so a workload cannot keep observing state after its power was cut.
func (f *Fault) dead() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjected
	}
	return nil
}

type faultFile struct {
	fault *Fault
	name  string
	f     *os.File
	size  int64
}

func (w *faultFile) Write(p []byte) (int, error) {
	f := w.fault
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrInjected
	}
	f.count++
	if f.failAt > 0 && f.count >= f.failAt {
		if f.tear && len(p) > 1 {
			if n, err := w.f.Write(p[:len(p)/2]); err == nil {
				// The interrupted flush pushed everything up to and
				// including the torn half onto the platter.
				f.durable[w.name] = w.size + int64(n)
			}
		}
		f.crashNow()
		return 0, ErrInjected
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

func (w *faultFile) Sync() error {
	f := w.fault
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	f.durable[w.name] = w.size
	return nil
}

func (w *faultFile) Close() error { return w.f.Close() }

// Create implements FS.
func (f *Fault) Create(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	file, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	f.durable[name] = 0
	return &faultFile{fault: f, name: name, f: file}, nil
}

// Append implements FS.
func (f *Fault) Append(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	file, err := os.OpenFile(name, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := file.Stat()
	if err != nil {
		file.Close()
		return nil, err
	}
	// Pre-existing bytes we never saw are assumed durable; bytes we wrote
	// without syncing keep their recorded exposure.
	if _, ok := f.durable[name]; !ok {
		f.durable[name] = st.Size()
	}
	return &faultFile{fault: f, name: name, f: file, size: st.Size()}, nil
}

// Rename implements FS.
func (f *Fault) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	if d, ok := f.durable[oldpath]; ok {
		f.durable[newpath] = d
		delete(f.durable, oldpath)
	} else if st, err := os.Stat(newpath); err == nil {
		f.durable[newpath] = st.Size()
	}
	return nil
}

// Remove implements FS.
func (f *Fault) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	if err := os.Remove(name); err != nil {
		return err
	}
	delete(f.durable, name)
	return nil
}

// Truncate implements FS. Like the OS implementation it syncs, so the new
// size is durable.
func (f *Fault) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	if err := os.Truncate(name, size); err != nil {
		return err
	}
	f.durable[name] = size
	return nil
}

// SyncDir implements FS. Renames are already durable in this model (see
// the type comment), so only the fault point matters.
func (f *Fault) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step()
}

// Open implements FS.
func (f *Fault) Open(name string) (io.ReadCloser, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return os.Open(name)
}

// ReadFile implements FS.
func (f *Fault) ReadFile(name string) ([]byte, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return os.ReadFile(name)
}

// Stat implements FS.
func (f *Fault) Stat(name string) (gofs.FileInfo, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return os.Stat(name)
}

// ReadDir implements FS.
func (f *Fault) ReadDir(dir string) ([]string, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return OS.ReadDir(dir)
}

var _ FS = (*Fault)(nil)

// String aids test logging.
func (f *Fault) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fmt.Sprintf("fault(at=%d tear=%v count=%d crashed=%v)", f.failAt, f.tear, f.count, f.crashed)
}
