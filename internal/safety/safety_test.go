package safety

import (
	"strings"
	"testing"

	"verlog/internal/parser"
	"verlog/internal/term"
)

func parse(t *testing.T, src string) *term.Program {
	t.Helper()
	p, err := parser.Program(src, "t.vlg")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestSafePrograms(t *testing.T) {
	srcs := []string{
		// The paper's programs.
		`r: mod[E].sal -> (S, S') <- E.isa -> empl, E.sal -> S, S' = S * 1.1.`,
		`r: del[mod(E)].* <- mod(E).isa -> empl / boss -> B / sal -> SE, mod(B).sal -> SB, SE > SB.`,
		`r: ins[mod(E)].isa -> hpe <- mod(E).sal -> S, S > 4500, !del[mod(E)].isa -> empl.`,
		`r: ins[X].anc -> P <- ins(X).isa -> person / anc -> A, A.parents -> P.`,
		// Binding through chained equalities.
		`r: ins[X].m -> C <- X.t -> A, B = A + 1, C = B * 2.`,
		// Variable bound via a positive body update-term.
		`r: ins[mod(E)].done -> yes <- mod[E].sal -> (S, S').`,
		// Facts (no body, ground head).
		`r: ins[henry].hobby -> chess.`,
		// Variable bound as a method argument.
		`r: ins[X].seen -> Y <- X.rate@Y -> R.`,
	}
	for _, src := range srcs {
		if err := Program(parse(t, src)); err != nil {
			t.Errorf("safe program rejected: %q: %v", src, err)
		}
	}
}

func TestUnsafePrograms(t *testing.T) {
	cases := []struct {
		src     string
		mention string
	}{
		{`r: ins[X].m -> Y <- X.t -> 1.`, "Y"},
		{`r: ins[X].m -> a.`, "X"},                        // fact with variable
		{`r: ins[X].m -> a <- !X.t -> 1.`, "X"},           // only negative occurrence
		{`r: ins[X].m -> a <- X.t -> 1, Y > 2.`, "Y"},     // comparison does not bind
		{`r: ins[X].m -> Y <- X.t -> 1, Y = Z + 1.`, "Y"}, // equality with unbound rhs
		{`r: ins[X].m -> a <- X.t -> 1, !Y.t -> 1.`, "Y"}, // negated version term
	}
	for _, c := range cases {
		err := Program(parse(t, c.src))
		if err == nil {
			t.Errorf("unsafe program accepted: %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.mention) {
			t.Errorf("error for %q does not mention %q: %v", c.src, c.mention, err)
		}
	}
}

func TestStructuralChecksOnBuiltPrograms(t *testing.T) {
	// Programs built programmatically bypass the parser's checks; safety
	// re-validates the structure.
	existsHead := term.Rule{Head: term.UpdateAtom{
		Kind: term.Ins,
		V:    term.NewVersionID(term.Sym("o")),
		App:  term.MethodApp{Method: term.ExistsMethod, Result: term.Sym("o")},
	}}
	if err := Rule(existsHead); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Errorf("exists head: %v", err)
	}

	modWithoutPair := term.Rule{Head: term.UpdateAtom{
		Kind: term.Mod,
		V:    term.NewVersionID(term.Sym("o")),
		App:  term.MethodApp{Method: "m", Result: term.Sym("a")},
	}}
	if err := Rule(modWithoutPair); err == nil || !strings.Contains(err.Error(), "result pair") {
		t.Errorf("mod without pair: %v", err)
	}

	insWithPair := term.Rule{Head: term.UpdateAtom{
		Kind:      term.Ins,
		V:         term.NewVersionID(term.Sym("o")),
		App:       term.MethodApp{Method: "m", Result: term.Sym("a")},
		NewResult: term.Sym("b"),
	}}
	if err := Rule(insWithPair); err == nil || !strings.Contains(err.Error(), "result pair") {
		t.Errorf("ins with pair: %v", err)
	}

	insAll := term.Rule{Head: term.UpdateAtom{
		Kind: term.Ins,
		V:    term.NewVersionID(term.Sym("o")),
		All:  true,
	}}
	if err := Rule(insAll); err == nil || !strings.Contains(err.Error(), "delete-all") {
		t.Errorf("ins delete-all: %v", err)
	}

	allInBody := term.Rule{
		Head: term.UpdateAtom{Kind: term.Ins, V: term.NewVersionID(term.Sym("o")),
			App: term.MethodApp{Method: "m", Result: term.Sym("a")}},
		Body: []term.Literal{{Atom: term.UpdateAtom{Kind: term.Del, V: term.NewVersionID(term.Sym("o")), All: true}}},
	}
	if err := Rule(allInBody); err == nil || !strings.Contains(err.Error(), "rule heads") {
		t.Errorf("delete-all in body: %v", err)
	}
}

func TestProgramAggregatesErrors(t *testing.T) {
	p := parse(t, `
r1: ins[X].m -> Y <- X.t -> 1.
r2: ins[X].m -> a <- X.t -> 1.
r3: ins[X].m -> Z <- X.t -> 1.
`)
	err := Program(p)
	if err == nil {
		t.Fatalf("no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "r1") || !strings.Contains(msg, "r3") {
		t.Errorf("aggregated error misses rules: %v", msg)
	}
	if strings.Contains(msg, "r2") {
		t.Errorf("safe rule r2 flagged: %v", msg)
	}
}
