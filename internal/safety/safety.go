// Package safety checks update-rules for safety in the sense of Ullman
// (Principles of Database and Knowledge-Base Systems, Vol. I), adapted to
// the verlog language: every variable of a rule must be limited, i.e.
//
//   - it occurs in a positive body version-term or update-term (at the base
//     of the version-id-term, as a method argument, or as a result), or
//   - it is equated, via the built-in =, with an expression all of whose
//     variables are limited.
//
// Safe rules guarantee that only finitely many ground instances fire and
// that negated literals and comparisons are fully bound when evaluated —
// the property Section 2.1 of the paper relies on for termination.
//
// The package also re-checks the structural invariants the parser enforces
// (no exists in heads, delete-all only with del, modify carries a result
// pair), so programs constructed programmatically get the same guarantees.
package safety

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"verlog/internal/term"
)

// RuleError describes a safety violation in one rule.
type RuleError struct {
	Rule  string // rule label
	Index int    // rule position in the program
	Msg   string
}

func (e *RuleError) Error() string {
	return fmt.Sprintf("safety: rule %s: %s", e.Rule, e.Msg)
}

// Program checks every rule of p and returns all violations joined.
func Program(p *term.Program) error {
	var errs []error
	for i, r := range p.Rules {
		if err := check(r, i); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Rule checks a single rule.
func Rule(r term.Rule) error { return check(r, 0) }

func check(r term.Rule, index int) error {
	fail := func(format string, args ...any) error {
		return &RuleError{Rule: r.Label(index), Index: index, Msg: fmt.Sprintf(format, args...)}
	}

	// Structural invariants.
	if r.Head.All && r.Head.Kind != term.Del {
		return fail("delete-all head requires del, found %s", r.Head.Kind)
	}
	if !r.Head.All {
		if r.Head.App.Method == term.ExistsMethod {
			return fail("the system method %q may not occur in a rule head", term.ExistsMethod)
		}
		if r.Head.Kind == term.Mod && r.Head.NewResult == nil {
			return fail("modify head needs a result pair (old, new)")
		}
		if r.Head.Kind != term.Mod && r.Head.NewResult != nil {
			return fail("only modify heads carry a result pair")
		}
	}
	if r.Head.V.Any {
		return fail("the any(...) wildcard is not allowed in update-rules")
	}
	for _, l := range r.Body {
		switch a := l.Atom.(type) {
		case term.UpdateAtom:
			if a.All {
				return fail("delete-all is only allowed in rule heads")
			}
			if a.V.Any {
				return fail("the any(...) wildcard is not allowed in update-rules")
			}
		case term.VersionAtom:
			if a.V.Any {
				return fail("the any(...) wildcard is only allowed in queries and derived rules")
			}
		}
	}

	// Limitedness analysis.
	limited := map[term.Var]bool{}
	mark := func(t term.ObjTerm) {
		if v, ok := t.(term.Var); ok {
			limited[v] = true
		}
	}
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		switch a := l.Atom.(type) {
		case term.VersionAtom:
			mark(a.V.Base)
			for _, arg := range a.App.Args {
				mark(arg)
			}
			mark(a.App.Result)
		case term.UpdateAtom:
			mark(a.V.Base)
			for _, arg := range a.App.Args {
				mark(arg)
			}
			mark(a.App.Result)
			if a.NewResult != nil {
				mark(a.NewResult)
			}
		}
	}
	// Propagate through = built-ins until a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, l := range r.Body {
			if l.Neg {
				continue
			}
			b, ok := l.Atom.(term.BuiltinAtom)
			if !ok || b.Op != term.OpEq {
				continue
			}
			if v, ok := singleVar(b.L); ok && !limited[v] && allLimited(b.R, limited) {
				limited[v] = true
				changed = true
			}
			if v, ok := singleVar(b.R); ok && !limited[v] && allLimited(b.L, limited) {
				limited[v] = true
				changed = true
			}
		}
	}

	var unlimited []string
	for v := range r.Vars() {
		if !limited[v] {
			unlimited = append(unlimited, string(v))
		}
	}
	if len(unlimited) > 0 {
		sort.Strings(unlimited)
		return fail("unlimited variable(s) %s: every variable must occur in a positive body version- or update-term, or be equated to a bound expression", strings.Join(unlimited, ", "))
	}
	return nil
}

func singleVar(e term.Expr) (term.Var, bool) {
	v, ok := e.(term.VarExpr)
	if !ok {
		return "", false
	}
	return v.V, true
}

func allLimited(e term.Expr, limited map[term.Var]bool) bool {
	for _, v := range term.ExprVars(e, nil) {
		if !limited[v] {
			return false
		}
	}
	return true
}
