// Package safety checks update-rules for safety in the sense of Ullman
// (Principles of Database and Knowledge-Base Systems, Vol. I), adapted to
// the verlog language: every variable of a rule must be limited, i.e.
//
//   - it occurs in a positive body version-term or update-term (at the base
//     of the version-id-term, as a method argument, or as a result), or
//   - it is equated, via the built-in =, with an expression all of whose
//     variables are limited.
//
// Safe rules guarantee that only finitely many ground instances fire and
// that negated literals and comparisons are fully bound when evaluated —
// the property Section 2.1 of the paper relies on for termination.
//
// The package also re-checks the structural invariants the parser enforces
// (no exists in heads, delete-all only with del, modify carries a result
// pair), so programs constructed programmatically get the same guarantees.
package safety

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"verlog/internal/term"
)

// ViolationKind classifies a safety violation, for the diagnostics layer.
type ViolationKind uint8

// The violation kinds.
const (
	// BadDeleteAll: delete-all with a non-del kind, or in a rule body.
	BadDeleteAll ViolationKind = iota
	// ExistsHead: the reserved exists method in a rule head.
	ExistsHead
	// BadModPair: a modify without a result pair, or a pair elsewhere.
	BadModPair
	// BadWildcard: the any(...) wildcard in an update-rule.
	BadWildcard
	// UnlimitedVar: a variable not limited by any positive body term.
	UnlimitedVar
)

// Violation is one structured safety violation inside a rule.
type Violation struct {
	Kind ViolationKind
	// Var is the offending variable for UnlimitedVar violations.
	Var term.Var
	// Pos locates the violation: the variable's first occurrence, the
	// offending literal, or the rule itself.
	Pos term.Pos
	// Msg is the human-readable description.
	Msg string
}

// RuleError describes a safety violation in one rule.
type RuleError struct {
	Rule  string // rule label
	Index int    // rule position in the program
	Msg   string
	// Pos locates the first violation (zero for programmatic rules).
	Pos term.Pos
}

func (e *RuleError) Error() string {
	return fmt.Sprintf("safety: rule %s: %s", e.Rule, e.Msg)
}

// Program checks every rule of p and returns all violations joined.
func Program(p *term.Program) error {
	var errs []error
	for i, r := range p.Rules {
		if err := check(r, i); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Rule checks a single rule.
func Rule(r term.Rule) error { return check(r, 0) }

// check wraps RuleViolations into the classic error form: the first
// structural violation alone, or every unlimited variable aggregated.
func check(r term.Rule, index int) error {
	vs := RuleViolations(r)
	if len(vs) == 0 {
		return nil
	}
	if vs[0].Kind != UnlimitedVar {
		return &RuleError{Rule: r.Label(index), Index: index, Msg: vs[0].Msg, Pos: vs[0].Pos}
	}
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = string(v.Var)
	}
	return &RuleError{
		Rule: r.Label(index), Index: index, Pos: vs[0].Pos,
		Msg: fmt.Sprintf("unlimited variable(s) %s: every variable must occur in a positive body version- or update-term, or be equated to a bound expression", strings.Join(names, ", ")),
	}
}

// RuleViolations collects every safety violation in r: all structural
// problems in source order, then every unlimited variable (sorted by
// name). An empty result means the rule is safe. This is the shared core
// behind Rule/Program and the analysis package's diagnostic pass.
func RuleViolations(r term.Rule) []Violation {
	var vs []Violation
	structural := func(kind ViolationKind, pos term.Pos, format string, args ...any) {
		vs = append(vs, Violation{Kind: kind, Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}

	// Structural invariants.
	if r.Head.All && r.Head.Kind != term.Del {
		structural(BadDeleteAll, r.Pos, "delete-all head requires del, found %s", r.Head.Kind)
	}
	if !r.Head.All {
		if r.Head.App.Method == term.ExistsMethod {
			structural(ExistsHead, r.Pos, "the system method %q may not occur in a rule head", term.ExistsMethod)
		}
		if r.Head.Kind == term.Mod && r.Head.NewResult == nil {
			structural(BadModPair, r.Pos, "modify head needs a result pair (old, new)")
		}
		if r.Head.Kind != term.Mod && r.Head.NewResult != nil {
			structural(BadModPair, r.Pos, "only modify heads carry a result pair")
		}
	}
	if r.Head.V.Any {
		structural(BadWildcard, r.Pos, "the any(...) wildcard is not allowed in update-rules")
	}
	for _, l := range r.Body {
		pos := l.Pos
		if !pos.IsValid() {
			pos = r.Pos
		}
		switch a := l.Atom.(type) {
		case term.UpdateAtom:
			if a.All {
				structural(BadDeleteAll, pos, "delete-all is only allowed in rule heads")
			}
			if a.V.Any {
				structural(BadWildcard, pos, "the any(...) wildcard is not allowed in update-rules")
			}
		case term.VersionAtom:
			if a.V.Any {
				structural(BadWildcard, pos, "the any(...) wildcard is only allowed in queries and derived rules")
			}
		}
	}

	// Limitedness analysis.
	limited := map[term.Var]bool{}
	mark := func(t term.ObjTerm) {
		if v, ok := t.(term.Var); ok {
			limited[v] = true
		}
	}
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		switch a := l.Atom.(type) {
		case term.VersionAtom:
			mark(a.V.Base)
			for _, arg := range a.App.Args {
				mark(arg)
			}
			mark(a.App.Result)
		case term.UpdateAtom:
			mark(a.V.Base)
			for _, arg := range a.App.Args {
				mark(arg)
			}
			mark(a.App.Result)
			if a.NewResult != nil {
				mark(a.NewResult)
			}
		}
	}
	// Propagate through = built-ins until a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, l := range r.Body {
			if l.Neg {
				continue
			}
			b, ok := l.Atom.(term.BuiltinAtom)
			if !ok || b.Op != term.OpEq {
				continue
			}
			if v, ok := singleVar(b.L); ok && !limited[v] && allLimited(b.R, limited) {
				limited[v] = true
				changed = true
			}
			if v, ok := singleVar(b.R); ok && !limited[v] && allLimited(b.L, limited) {
				limited[v] = true
				changed = true
			}
		}
	}

	var unlimited []string
	for v := range r.Vars() {
		if !limited[v] {
			unlimited = append(unlimited, string(v))
		}
	}
	sort.Strings(unlimited)
	for _, name := range unlimited {
		v := term.Var(name)
		vs = append(vs, Violation{
			Kind: UnlimitedVar, Var: v, Pos: r.PosOf(v),
			Msg: fmt.Sprintf("unbound variable %s: it must occur in a positive body version- or update-term, or be equated to a bound expression", name),
		})
	}
	return vs
}

func singleVar(e term.Expr) (term.Var, bool) {
	v, ok := e.(term.VarExpr)
	if !ok {
		return "", false
	}
	return v.V, true
}

func allLimited(e term.Expr, limited map[term.Var]bool) bool {
	for _, v := range term.ExprVars(e, nil) {
		if !limited[v] {
			return false
		}
	}
	return true
}
