package lint

import (
	"go/ast"
	"go/token"
)

// arenaGetters are the free-list/arena pop calls that hand out scratch
// buffers: the compiled executor's frame arena and the interpreter
// matcher's candidate free-lists. A popped buffer is only valid until its
// matching put* pushes it back at the end of the enclosing enumeration —
// the lists are reused across fixpoint iterations, so a buffer that
// escapes into longer-lived storage is aliased and silently overwritten
// on a later iteration.
var arenaGetters = map[string]bool{
	"getFrame": true,
	"getVIDs":  true,
	"getOIDs":  true,
	"getKRs":   true,
}

// Arenaescape flags arena-popped scratch buffers escaping their
// enumeration: a variable assigned from getFrame/getVIDs/getOIDs/getKRs
// that is stored into a field or map element, returned, or captured by an
// append whose result lands outside a plain local. Copy the contents out
// (append to a fresh slice) instead of retaining the buffer.
var Arenaescape = &Analyzer{
	Name: "arenaescape",
	Doc: "flag frame/candidate buffers popped from an eval arena free-list " +
		"that are stored past the enumeration (field/map stores, returns)",
	Run: runArenaescape,
}

func runArenaescape(p *Pass) {
	funcBodies(p, func(name string, body *ast.BlockStmt) {
		// tracked maps a local name to the getter it was popped from.
		tracked := map[string]string{}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				trackArenaAssign(p, n, tracked)
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if id, ok := res.(*ast.Ident); ok && tracked[id.Name] != "" {
						p.Reportf(res.Pos(), "%s (popped from %s) is returned; the free-list reuses it next iteration — copy the contents instead",
							id.Name, tracked[id.Name])
					}
				}
			}
			return true
		})
	})
}

// trackArenaAssign updates the tracked set for one assignment and reports
// stores that let a tracked buffer outlive its enumeration.
func trackArenaAssign(p *Pass, as *ast.AssignStmt, tracked map[string]string) {
	// Right side first: does any RHS expression leak a tracked buffer into
	// a non-local LHS? A plain `buf2 := buf` alias is tracked, not
	// reported; `x.field = buf`, `m[k] = buf` and `x.field = append(...,
	// buf...)` are escapes.
	for i, rhs := range as.Rhs {
		var lhs ast.Expr
		if i < len(as.Lhs) {
			lhs = as.Lhs[i]
		} else if len(as.Lhs) == 1 {
			lhs = as.Lhs[0]
		}
		leaked := leakedArenaVar(rhs, tracked)
		if leaked == "" {
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			// Local alias: keep tracking under the new name.
			if _, isCall := rhs.(*ast.CallExpr); !isCall {
				tracked[l.Name] = tracked[leaked]
			}
		default:
			p.Reportf(as.Pos(), "%s (popped from %s) is stored into %s; the free-list reuses it next iteration — copy the contents instead",
				leaked, tracked[leaked], renderLHS(lhs))
		}
	}
	// Left side second: any other assignment to a tracked name unbinds it
	// (a fresh make/slice literal replaces the arena buffer).
	if as.Tok != token.DEFINE && as.Tok != token.ASSIGN {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		var rhs ast.Expr
		if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		if getter := arenaGetterOf(rhs); getter != "" {
			tracked[id.Name] = getter
		} else if leakedArenaVar(rhs, tracked) == "" {
			delete(tracked, id.Name)
		}
	}
}

// arenaGetterOf returns the getter name when e is a call to one, else "".
func arenaGetterOf(e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	if name := calleeName(call); arenaGetters[name] {
		return name
	}
	return ""
}

// leakedArenaVar returns the name of a tracked buffer referenced by e at a
// position that preserves the buffer's identity: the expression itself, or
// the first argument of an append (append(buf, ...) returns buf's backing
// array unless it grows).
func leakedArenaVar(e ast.Expr, tracked map[string]string) string {
	switch x := e.(type) {
	case *ast.Ident:
		if tracked[x.Name] != "" {
			return x.Name
		}
	case *ast.CallExpr:
		if name := calleeName(x); name == "append" && len(x.Args) > 0 {
			if id, ok := x.Args[0].(*ast.Ident); ok && tracked[id.Name] != "" {
				return id.Name
			}
		}
	case *ast.SliceExpr:
		if id, ok := x.X.(*ast.Ident); ok && tracked[id.Name] != "" {
			return id.Name
		}
	}
	return ""
}

// renderLHS names an escape target for the finding message.
func renderLHS(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name + "." + x.Sel.Name
		}
		return "a field"
	case *ast.IndexExpr:
		return "a map/slice element"
	case nil:
		return "multiple targets"
	}
	return "a non-local target"
}
