package lint

import (
	"go/ast"
	"strconv"
)

// metricCtors are the obs.Registry constructors taking (name, help,
// labelKey, labelValue, ...) variadic label pairs.
var metricCtors = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// Boundedlabels enforces bounded metric cardinality for tenant labels: a
// "tenant" label value handed to Counter/Gauge/Histogram must come
// through an obs.BoundedLabels cap (syntactically: a .Value(...) call),
// never the raw tenant name. One crawler enumerating tenant URLs must
// not be able to grow /metrics without bound.
var Boundedlabels = &Analyzer{
	Name: "boundedlabels",
	Doc:  `flag a "tenant" metric label whose value does not go through BoundedLabels.Value`,
	Run:  runBoundedlabels,
}

func runBoundedlabels(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !metricCtors[calleeName(call)] {
				return true
			}
			// Label pairs start after (name, help); keys sit at even
			// offsets from there.
			for i := 2; i+1 < len(call.Args); i += 2 {
				lit, ok := call.Args[i].(*ast.BasicLit)
				if !ok {
					continue
				}
				key, err := strconv.Unquote(lit.Value)
				if err != nil || key != "tenant" {
					continue
				}
				if val, ok := call.Args[i+1].(*ast.CallExpr); ok && calleeName(val) == "Value" {
					continue
				}
				p.Reportf(call.Args[i+1].Pos(),
					`the "tenant" metric label must be capped through obs.BoundedLabels.Value (unbounded label cardinality)`)
			}
			return true
		})
	}
}
