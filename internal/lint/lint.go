// Package lint is a small go/analysis-style framework for enforcing this
// codebase's own invariants — the ones the type system cannot express and
// code review keeps re-litigating:
//
//   - frozenmutate: no mutation of a Freeze()d base outside objectbase
//   - lockorder: diskMu is never acquired while commitMu is held
//   - boundedlabels: tenant-labeled metrics go through obs.BoundedLabels
//   - commitclock: no wall-clock reads inside the group-commit critical
//     section (the journal append+fsync path is timed outside commitMu)
//
// The framework is deliberately stdlib-only (go/ast, go/parser, go/token):
// the analyzers are syntactic, which keeps them dependency-free and fast,
// at the price of being intra-function heuristics rather than
// whole-program proofs. Each analyzer errs toward silence: a finding is
// always a real pattern worth a look, absence of findings is not a proof.
//
// cmd/verlog-lint wires the analyzers into a multichecker run by
// `make lint` and CI.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and -run selections.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass is the per-(analyzer, package) unit of work.
type Pass struct {
	// Fset positions every node of Files.
	Fset *token.FileSet
	// Files are the package's parsed sources, test files included.
	Files []*ast.File
	// Path is the package's import path (module path + directory).
	Path string

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported invariant violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Package is one parsed package directory.
type Package struct {
	// Path is the import path (module path joined with the directory).
	Path string
	// Fset positions the files.
	Fset *token.FileSet
	// Files are all parsed .go files of the directory, tests included.
	Files []*ast.File
}

// All lists every analyzer, in reporting order.
var All = []*Analyzer{Frozenmutate, Lockorder, Boundedlabels, Commitclock, Arenaescape}

// Load walks the module rooted at dir and parses every package directory
// (skipping testdata, vendored and hidden trees). The module path is read
// from go.mod so findings can be scoped by import path.
func Load(dir string) ([]*Package, error) {
	modPath, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	byDir := map[string]*Package{}
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		pkgDir := filepath.Dir(path)
		pkg := byDir[pkgDir]
		if pkg == nil {
			rel, err := filepath.Rel(dir, pkgDir)
			if err != nil {
				return err
			}
			p := modPath
			if rel != "." {
				p = modPath + "/" + filepath.ToSlash(rel)
			}
			pkg = &Package{Path: p, Fset: token.NewFileSet()}
			byDir[pkgDir] = pkg
		}
		f, err := parser.ParseFile(pkg.Fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(byDir))
	for _, p := range byDir {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// modulePath reads the module directive of dir/go.mod.
func modulePath(dir string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", dir, err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
}

// Run applies the analyzers to the packages and returns the findings
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Path: pkg.Path,
				analyzer: a, findings: &findings}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Pos, findings[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings
}

// selRoot matches expr against a selector chain ending in
// <...>.<field>.<method> and returns the field name when the method
// matches, e.g. selRoot(`r.commitMu.Lock`, "Lock") = "commitMu".
func selRoot(expr ast.Expr, method string) string {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return ""
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	}
	return ""
}

// calleeName returns the method/function name a call invokes, or "".
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}

// funcBodies yields every function or method body of the pass with its
// name, including function literals (named after the enclosing function).
func funcBodies(p *Pass, fn func(name string, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd.Name.Name, fd.Body)
		}
	}
}
