package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// analyze parses src as a single-file package with the given import path
// and returns the findings of one analyzer.
func analyze(t *testing.T, a *Analyzer, path, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	pkg := &Package{Path: path, Fset: fset, Files: []*ast.File{f}}
	return Run([]*Package{pkg}, []*Analyzer{a})
}

func wantFindings(t *testing.T, got []Finding, substrs ...string) {
	t.Helper()
	if len(got) != len(substrs) {
		t.Fatalf("got %d finding(s), want %d:\n%v", len(got), len(substrs), got)
	}
	for i, want := range substrs {
		if !strings.Contains(got[i].Message, want) {
			t.Errorf("finding %d = %q, want substring %q", i, got[i].Message, want)
		}
	}
}

func TestFrozenmutate(t *testing.T) {
	const positive = `package x
func bad(r *Repo) {
	b, err := r.Head()
	if err != nil {
		return
	}
	b.Insert(f)          // finding: Head() hands out a frozen base
	c := b.Freeze()
	c.Remove(f)          // finding: explicit Freeze
}`
	got := analyze(t, Frozenmutate, "verlog/internal/x", positive)
	wantFindings(t, got, "b came from Head()", "c came from Freeze()")

	const negative = `package x
func good(r *Repo) {
	b, err := r.Head()
	if err != nil {
		return
	}
	b = b.Clone()        // re-derived: mutable again
	b.Insert(f)
	w := New()
	w.Insert(f)          // never frozen
	lru.Remove(victim)   // unrelated Remove on an untracked receiver
}`
	if got := analyze(t, Frozenmutate, "verlog/internal/x", negative); len(got) != 0 {
		t.Errorf("negative fixture flagged: %v", got)
	}

	// The objectbase package implements the discipline and is exempt.
	if got := analyze(t, Frozenmutate, "verlog/internal/objectbase", positive); len(got) != 0 {
		t.Errorf("objectbase package flagged: %v", got)
	}
}

func TestLockorder(t *testing.T) {
	const positive = `package x
func bad(r *Repo) {
	r.commitMu.Lock()
	r.diskMu.Lock()      // finding: inverted order
	r.diskMu.Unlock()
	r.commitMu.Unlock()
}`
	got := analyze(t, Lockorder, "verlog/internal/x", positive)
	wantFindings(t, got, "diskMu -> commitMu")

	// The early-exit unlock idiom must not fool the scanner into
	// believing the main path released the lock.
	const earlyExit = `package x
func bad(r *Repo) {
	r.commitMu.Lock()
	if r.closed {
		r.commitMu.Unlock()
		return
	}
	r.diskMu.Lock()      // finding: commitMu still held here
}`
	got = analyze(t, Lockorder, "verlog/internal/x", earlyExit)
	wantFindings(t, got, "diskMu.Lock() while commitMu is held")

	const negative = `package x
func good(r *Repo) error {
	r.commitMu.Lock()
	if r.closed {
		r.commitMu.Unlock()
		return ErrClosed
	}
	b := r.pending
	r.commitMu.Unlock()
	r.diskMu.Lock()      // correct order: commitMu released first
	defer r.diskMu.Unlock()
	return r.flush(b)
}
func alsoGood(r *Repo) {
	r.diskMu.Lock()
	defer r.diskMu.Unlock()
	r.commitMu.Lock()    // nesting in the sanctioned order
	r.commitMu.Unlock()
}`
	if got := analyze(t, Lockorder, "verlog/internal/x", negative); len(got) != 0 {
		t.Errorf("negative fixture flagged: %v", got)
	}
}

func TestCommitclock(t *testing.T) {
	const positive = `package x
func bad(r *Repo) {
	r.commitMu.Lock()
	start := time.Now()  // finding: clock probe inside the section
	r.seal()
	r.lat.Observe(time.Since(start)) // finding
	r.commitMu.Unlock()
}`
	got := analyze(t, Commitclock, "verlog/internal/x", positive)
	wantFindings(t, got, "time.Now()", "time.Since()")

	const negative = `package x
func good(r *Repo) {
	start := time.Now()              // before the section
	r.commitMu.Lock()
	defer r.commitMu.Unlock()
	defer func() {
		r.lat.Observe(time.Since(start)) // deferred: runs after return
	}()
	r.seal()
}
func alsoGood(r *Repo) {
	r.commitMu.Lock()
	b := r.pending
	r.commitMu.Unlock()
	syncStart := time.Now()          // probes the fsync, lock released
	b.file.Sync()
	r.fsyncLat.Observe(time.Since(syncStart))
}`
	if got := analyze(t, Commitclock, "verlog/internal/x", negative); len(got) != 0 {
		t.Errorf("negative fixture flagged: %v", got)
	}
}

func TestBoundedlabels(t *testing.T) {
	const positive = `package x
func bad(s *Server, name string) {
	s.reg.Counter("verlog_tenant_requests_total", "by tenant",
		"tenant", name).Inc() // finding: raw tenant name
}`
	got := analyze(t, Boundedlabels, "verlog/internal/x", positive)
	wantFindings(t, got, "BoundedLabels.Value")

	const negative = `package x
func good(s *Server, name string) {
	s.reg.Counter("verlog_tenant_requests_total", "by tenant",
		"tenant", s.tenantLabels.Value(name)).Inc()
	s.reg.Counter("verlog_http_requests_total", "by route",
		"route", route, "code", code).Inc() // non-tenant labels are free-form
	s.log.Info("msg", "tenant", name)       // not a metric constructor
}`
	if got := analyze(t, Boundedlabels, "verlog/internal/x", negative); len(got) != 0 {
		t.Errorf("negative fixture flagged: %v", got)
	}
}

// TestRepoIsClean runs every analyzer over this repository itself: the
// codebase must satisfy its own invariants (this is the same run CI does
// through cmd/verlog-lint).
func TestRepoIsClean(t *testing.T) {
	pkgs, err := Load("../..")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("Load found only %d packages — walker broken?", len(pkgs))
	}
	if got := Run(pkgs, All); len(got) != 0 {
		t.Errorf("the repository violates its own invariants:\n%v", got)
	}
}

func TestArenaescape(t *testing.T) {
	const positive = `package x
func bad(x *executor) []OID {
	fr := x.getFrame(4)
	x.saved = fr                // finding: field store
	cache[k] = append(fr, v)    // finding: append keeps fr's backing array
	return fr                   // finding: returned past the enumeration
}`
	got := analyze(t, Arenaescape, "verlog/internal/x", positive)
	wantFindings(t, got,
		"stored into x.saved",
		"stored into a map/slice element",
		"is returned")

	const negative = `package x
func good(x *executor) []OID {
	fr := x.getFrame(4)
	fr = append(fr, v)          // growing the tracked buffer is fine
	out := make([]OID, len(fr))
	copy(out, fr)               // copying the contents out is the idiom
	x.putFrame(fr)              // pushing it back is the contract
	fr = nil                    // unbound: later stores are not findings
	x.saved = fr
	buf := m.getVIDs()
	m.putVIDs(buf)
	return out
}`
	if got := analyze(t, Arenaescape, "verlog/internal/x", negative); len(got) != 0 {
		t.Fatalf("unexpected findings: %v", got)
	}
}
