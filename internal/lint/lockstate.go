package lint

import (
	"go/ast"
)

// lockScan is a tiny intra-function flow analysis over one mutex: it
// walks a statement list in source order tracking whether the mutex is
// held, and invokes a callback on every node visited while it is.
//
// The analysis understands the codebase's locking idioms:
//
//   - mu.Lock() / mu.Unlock() toggle the state in straight-line code;
//   - `defer mu.Unlock()` keeps the mutex held for the rest of the
//     function (which is exactly the runtime behavior);
//   - an if/else (or case) branch that ends in a terminating statement
//     (return, panic, continue, break, goto) does not leak its state
//     into the fallthrough path — so the ubiquitous
//     `if cond { mu.Unlock(); return }` early-exit does not make the
//     scanner believe the main path released the lock;
//   - function literals are scanned independently with the mutex
//     considered free (deferred closures run at return time, after the
//     critical section the linter cares about).
//
// It is a heuristic, not a proof: interprocedural locking (helpers named
// *Locked) and branches that unlock on the fallthrough path are out of
// scope. Both analyzers built on it only ever report patterns inside a
// critical section the scan is certain about.
type lockScan struct {
	mutex string // field name, e.g. "commitMu"
	// onHeld is called on every call expression evaluated while the
	// mutex is held; the analyzer filters for the calls it forbids.
	onHeld func(call *ast.CallExpr)
}

// scanBody analyzes one function body from the unlocked state.
func (s *lockScan) scanBody(body *ast.BlockStmt) {
	s.scanStmts(body.List, false)
}

// scanStmts walks stmts with the given entry state and returns the state
// at the fall-through exit.
func (s *lockScan) scanStmts(stmts []ast.Stmt, held bool) bool {
	for _, st := range stmts {
		held = s.scanStmt(st, held)
	}
	return held
}

func (s *lockScan) scanStmt(st ast.Stmt, held bool) bool {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return s.scanExpr(st.X, held)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			held = s.scanExpr(r, held)
		}
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the mutex stays held for
		// the remainder of the scan. Other deferred calls (incl. closures)
		// run outside the critical section.
		if selRoot(st.Call.Fun, "Unlock") == s.mutex {
			return held
		}
		s.scanClosures(st.Call, false)
		return held
	case *ast.GoStmt:
		s.scanClosures(st.Call, false)
		return held
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			held = s.scanExpr(r, held)
		}
		return held
	case *ast.BlockStmt:
		return s.scanStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		held = s.scanExpr(st.Cond, held)
		after := s.scanStmts(st.Body.List, held)
		if terminates(st.Body.List) {
			after = held // the branch never falls through
		}
		if st.Else != nil {
			elseAfter := s.scanStmt(st.Else, held)
			if !elseTerminates(st.Else) && elseAfter != after {
				// Branches disagree; stay conservative and keep the entry
				// state so neither path is misjudged.
				after = held
			}
		}
		return after
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		if st.Cond != nil {
			held = s.scanExpr(st.Cond, held)
		}
		s.scanStmts(st.Body.List, held)
		return held
	case *ast.RangeStmt:
		held = s.scanExpr(st.X, held)
		s.scanStmts(st.Body.List, held)
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, held)
				return false
			}
			if cc, ok := n.(*ast.CommClause); ok {
				s.scanStmts(cc.Body, held)
				return false
			}
			return true
		})
		return held
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, held)
	default:
		return held
	}
}

// scanExpr visits one expression, toggling on Lock/Unlock calls of the
// tracked mutex and reporting every node seen while it is held.
func (s *lockScan) scanExpr(e ast.Expr, held bool) bool {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			s.scanStmts(fl.Body.List, false)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if selRoot(call.Fun, "Lock") == s.mutex {
			held = true
			return false
		}
		if selRoot(call.Fun, "Unlock") == s.mutex {
			held = false
			return false
		}
		if held {
			s.onHeld(call)
		}
		return true
	})
	return held
}

// scanClosures scans only the function literals inside call.
func (s *lockScan) scanClosures(call *ast.CallExpr, held bool) {
	ast.Inspect(call, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			s.scanStmts(fl.Body.List, held)
			return false
		}
		return true
	})
}

// terminates reports whether a statement list cannot fall through.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

func elseTerminates(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return terminates(st.List)
	case *ast.IfStmt:
		return terminates(st.Body.List) && st.Else != nil && elseTerminates(st.Else)
	}
	return false
}
