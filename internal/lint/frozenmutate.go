package lint

import (
	"go/ast"
	"strings"
)

// frozenProducers are the calls that hand out a Freeze()d *objectbase.Base:
// the repository accessors publish frozen snapshots, and Freeze itself
// returns its (now immutable) receiver.
var frozenProducers = map[string]bool{
	"Freeze":   true,
	"Head":     true,
	"Initial":  true,
	"Snapshot": true,
	"At":       true,
}

// frozenMutators are the Base methods that panic on a frozen receiver.
var frozenMutators = map[string]bool{
	"Insert":       true,
	"Remove":       true,
	"SetState":     true,
	"EnsureObject": true,
}

// Frozenmutate flags mutations of a frozen base outside the objectbase
// package: a call to Insert/Remove/SetState/EnsureObject on a variable
// that was assigned from Freeze(), Head(), Initial(), Snapshot() or
// At() and never re-derived through Clone(). Such a call panics at
// runtime ("mutation of a frozen base") — the linter moves the failure
// to CI. The objectbase package itself is exempt: it implements the
// freeze discipline.
var Frozenmutate = &Analyzer{
	Name: "frozenmutate",
	Doc: "flag Insert/Remove/SetState/EnsureObject on a base obtained from " +
		"Freeze/Head/Initial/Snapshot/At without an intervening Clone",
	Run: runFrozenmutate,
}

func runFrozenmutate(p *Pass) {
	if strings.HasSuffix(p.Path, "internal/objectbase") {
		return
	}
	funcBodies(p, func(name string, body *ast.BlockStmt) {
		// frozen maps a local variable name to the producer that froze it.
		frozen := map[string]string{}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				trackAssign(n, frozen)
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				recv, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if sel.Sel.Name == "Freeze" {
					frozen[recv.Name] = "Freeze"
					return true
				}
				if producer := frozen[recv.Name]; producer != "" && frozenMutators[sel.Sel.Name] {
					p.Reportf(n.Pos(), "%s.%s mutates a frozen base (%s came from %s(); Clone() it first)",
						recv.Name, sel.Sel.Name, recv.Name, producer)
				}
			}
			return true
		})
	})
}

// trackAssign updates the frozen set for one assignment: a left-hand
// variable becomes frozen when its right-hand side is a frozen-producer
// call, and thaws on any other assignment (Clone(), New(), a literal...).
func trackAssign(as *ast.AssignStmt, frozen map[string]string) {
	producer := ""
	if len(as.Rhs) == 1 {
		producer = producerOf(as.Rhs[0])
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		switch {
		case len(as.Rhs) == len(as.Lhs) && len(as.Rhs) > 1:
			if pr := producerOf(as.Rhs[i]); pr != "" {
				frozen[id.Name] = pr
			} else {
				delete(frozen, id.Name)
			}
		case producer != "" && i == 0:
			// Multi-value form `b, err := r.Head()`: the base is the
			// first result.
			frozen[id.Name] = producer
		default:
			delete(frozen, id.Name)
		}
	}
}

// producerOf returns the frozen-producer name when expr is a call to one.
func producerOf(expr ast.Expr) string {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return ""
	}
	name := calleeName(call)
	if frozenProducers[name] {
		return name
	}
	return ""
}
