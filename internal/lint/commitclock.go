package lint

import (
	"go/ast"
)

// Commitclock keeps wall-clock reads out of the group-commit critical
// section. commitMu gates every writer: the section must stay a few
// pointer swaps long, and the journal's append/fsync latency probes
// (time.Now/time.Since pairs) belong around the disk calls under diskMu
// — never inside commitMu, where a vDSO stall or a clock-probe syscall
// stretches the serialization point of the whole pipeline. Deferred
// closures are exempt: they run at return, after the section the
// analyzer cares about.
var Commitclock = &Analyzer{
	Name: "commitclock",
	Doc:  "flag time.Now()/time.Since() while commitMu is held (probe latency outside the commit section)",
	Run:  runCommitclock,
}

func runCommitclock(p *Pass) {
	funcBodies(p, func(name string, body *ast.BlockStmt) {
		scan := &lockScan{mutex: "commitMu", onHeld: func(call *ast.CallExpr) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "time" {
				return
			}
			if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
				p.Reportf(call.Pos(),
					"time.%s() while commitMu is held in %s: wall-clock probes belong outside the commit critical section",
					sel.Sel.Name, name)
			}
		}}
		scan.scanBody(body)
	})
}
