package lint

import (
	"go/ast"
)

// Lockorder enforces the repository's lock hierarchy: diskMu (disk I/O,
// held for milliseconds across fsyncs) is always acquired BEFORE
// commitMu (the in-memory commit section, held for nanoseconds). A
// diskMu.Lock() issued while commitMu is held inverts the order and
// deadlocks against the group-commit leader, which takes diskMu first
// and then briefly re-enters commitMu to seal the batch.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "flag diskMu.Lock() while commitMu is held (the order is diskMu -> commitMu)",
	Run:  runLockorder,
}

func runLockorder(p *Pass) {
	funcBodies(p, func(name string, body *ast.BlockStmt) {
		scan := &lockScan{mutex: "commitMu", onHeld: func(call *ast.CallExpr) {
			if selRoot(call.Fun, "Lock") == "diskMu" {
				p.Reportf(call.Pos(),
					"diskMu.Lock() while commitMu is held in %s: the lock order is diskMu -> commitMu (release commitMu first)",
					name)
			}
		}}
		scan.scanBody(body)
	})
}
