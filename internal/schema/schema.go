// Package schema implements the optional typing layer the paper connects
// to in Section 2.4: "The way we consider inserts and deletions would
// require changes of corresponding class-definitions in a strongly typed
// environment" (citing Skarra/Zdonik's type evolution work). verlog's core
// is untyped, exactly like the paper's language; this package lets a user
// declare class signatures, check an object base against them, and report
// how an update changed which methods are populated per class — the
// schema-evolution view of an update program.
//
// A schema is written in the fact syntax, one method signature per fact:
//
//	empl.sal  -> num.
//	empl.pos  -> sym.
//	empl.boss -> empl.   % reference: results must be objects of class empl
//
// Result types are num, sym, str, any, or a class name. Objects belong to
// class c when they carry isa -> c.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"verlog/internal/objectbase"
	"verlog/internal/parser"
	"verlog/internal/term"
)

// Schema maps class name -> method name -> expected result type.
type Schema struct {
	classes map[string]map[string]TypeRef
}

// TypeRef is an expected result type.
type TypeRef struct {
	// Sort is the expected OID sort for value types; meaningful only when
	// Class is empty.
	Sort string // "num", "sym", "str", "any"
	// Class, when set, requires results to be objects of that class.
	Class string
}

func (t TypeRef) String() string {
	if t.Class != "" {
		return t.Class
	}
	return t.Sort
}

// valueSorts are the built-in result types.
var valueSorts = map[string]bool{"num": true, "sym": true, "str": true, "any": true}

// Parse reads a schema. Facts must have the shape class.method -> type
// with no version path and no arguments.
func Parse(src, file string) (*Schema, error) {
	facts, err := parser.Facts(src, file)
	if err != nil {
		return nil, err
	}
	s := &Schema{classes: map[string]map[string]TypeRef{}}
	declaredClasses := map[string]bool{}
	for _, f := range facts {
		if f.V.Path.Len() > 0 || !f.Args.Empty() {
			return nil, fmt.Errorf("schema: %s: signatures are class.method -> type facts", f)
		}
		if f.V.Object.Sort() != term.SortSym || f.Result.Sort() != term.SortSym {
			return nil, fmt.Errorf("schema: %s: class and type must be symbols", f)
		}
		if f.Method == term.ExistsMethod {
			return nil, fmt.Errorf("schema: the system method %q needs no declaration", term.ExistsMethod)
		}
		class := f.V.Object.Name()
		declaredClasses[class] = true
		ms, ok := s.classes[class]
		if !ok {
			ms = map[string]TypeRef{}
			s.classes[class] = ms
		}
		if prev, dup := ms[f.Method]; dup {
			return nil, fmt.Errorf("schema: %s.%s declared twice (%s and %s)", class, f.Method, prev, f.Result.Name())
		}
		tn := f.Result.Name()
		if valueSorts[tn] {
			ms[f.Method] = TypeRef{Sort: tn}
		} else {
			ms[f.Method] = TypeRef{Class: tn}
		}
	}
	// Class references must resolve to declared classes.
	for class, ms := range s.classes {
		for m, t := range ms {
			if t.Class != "" && !declaredClasses[t.Class] {
				return nil, fmt.Errorf("schema: %s.%s references undeclared class %s", class, m, t.Class)
			}
		}
	}
	return s, nil
}

// Classes returns the declared class names, sorted.
func (s *Schema) Classes() []string {
	out := make([]string, 0, len(s.classes))
	for c := range s.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Violation is one schema check failure.
type Violation struct {
	Object term.OID
	Class  string
	Method string
	Result term.OID
	// Want describes the expected type; empty when the method itself is
	// undeclared.
	Want string
}

func (v Violation) String() string {
	if v.Want == "" {
		return fmt.Sprintf("%s (class %s): method %s is not declared", v.Object, v.Class, v.Method)
	}
	return fmt.Sprintf("%s (class %s): %s -> %s does not conform to %s", v.Object, v.Class, v.Method, v.Result, v.Want)
}

// Options configures checking.
type Options struct {
	// RequireDeclared flags method applications on classed objects whose
	// method has no signature (closed-schema checking).
	RequireDeclared bool
}

// Check validates every classed object of the base against the schema.
// Objects whose isa classes are all undeclared are ignored; the isa and
// exists methods are exempt.
func (s *Schema) Check(base *objectbase.Base, opts Options) []Violation {
	var out []Violation
	for _, o := range base.Objects() {
		v := term.GVID{Object: o}
		var classes []string
		base.ForEachResult(v, term.MethodKey{Method: "isa"}, func(r term.OID) {
			if r.Sort() == term.SortSym {
				if _, ok := s.classes[r.Name()]; ok {
					classes = append(classes, r.Name())
				}
			}
		})
		if len(classes) == 0 {
			continue
		}
		sort.Strings(classes)
		base.ForEachFactOf(v, func(f term.Fact) {
			if f.Method == term.ExistsMethod || f.Method == "isa" {
				return
			}
			out = append(out, s.checkApp(base, classes, f, opts)...)
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (s *Schema) checkApp(base *objectbase.Base, classes []string, f term.Fact, opts Options) []Violation {
	var out []Violation
	declaredSomewhere := false
	for _, class := range classes {
		t, ok := s.classes[class][f.Method]
		if !ok {
			continue
		}
		declaredSomewhere = true
		if !conforms(base, f.Result, t) {
			out = append(out, Violation{
				Object: f.V.Object, Class: class, Method: f.Method,
				Result: f.Result, Want: t.String(),
			})
		}
	}
	if !declaredSomewhere && opts.RequireDeclared {
		out = append(out, Violation{
			Object: f.V.Object, Class: strings.Join(classes, ","), Method: f.Method, Result: f.Result,
		})
	}
	return out
}

func conforms(base *objectbase.Base, r term.OID, t TypeRef) bool {
	if t.Class != "" {
		if r.Sort() != term.SortSym {
			return false
		}
		return base.Has(term.NewFact(term.GVID{Object: r}, "isa", term.Sym(t.Class)))
	}
	switch t.Sort {
	case "num":
		return r.Sort() == term.SortNum
	case "sym":
		return r.Sort() == term.SortSym
	case "str":
		return r.Sort() == term.SortStr
	default: // any
		return true
	}
}

// Evolution is the schema-evolution view of one update: per class, the
// methods that became populated or unpopulated across the update — the
// changes a strongly typed system would have to mirror in its class
// definitions (Section 2.4's observation).
type Evolution struct {
	Class  string
	Gained []string // methods with instances after but not before
	Lost   []string // methods with instances before but not after
}

// EvolutionReport compares which declared-class methods are populated in
// before vs after.
func (s *Schema) EvolutionReport(before, after *objectbase.Base) []Evolution {
	var out []Evolution
	for _, class := range s.Classes() {
		b := populatedMethods(before, class)
		a := populatedMethods(after, class)
		var ev Evolution
		ev.Class = class
		for m := range a {
			if !b[m] {
				ev.Gained = append(ev.Gained, m)
			}
		}
		for m := range b {
			if !a[m] {
				ev.Lost = append(ev.Lost, m)
			}
		}
		sort.Strings(ev.Gained)
		sort.Strings(ev.Lost)
		if len(ev.Gained)+len(ev.Lost) > 0 {
			out = append(out, ev)
		}
	}
	return out
}

// populatedMethods returns the methods carried by any object of the class.
func populatedMethods(base *objectbase.Base, class string) map[string]bool {
	out := map[string]bool{}
	for _, o := range base.Objects() {
		v := term.GVID{Object: o}
		if !base.Has(term.NewFact(v, "isa", term.Sym(class))) {
			continue
		}
		base.ForEachFactOf(v, func(f term.Fact) {
			if f.Method != term.ExistsMethod && f.Method != "isa" {
				out[f.Method] = true
			}
		})
	}
	return out
}
