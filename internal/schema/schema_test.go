package schema

import (
	"strings"
	"testing"

	"verlog/internal/core"
	"verlog/internal/objectbase"
	"verlog/internal/parser"
)

const enterpriseSchema = `
empl.sal  -> num.
empl.pos  -> sym.
empl.boss -> empl.
empl.name -> str.
hpe.sal   -> num.
`

func mustSchema(t *testing.T, src string) *Schema {
	t.Helper()
	s, err := Parse(src, "schema.vlg")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func mustBase(t *testing.T, src string) *objectbase.Base {
	t.Helper()
	b, err := parser.ObjectBase(src, "ob.vlg")
	if err != nil {
		t.Fatalf("parse base: %v", err)
	}
	return b
}

func TestSchemaParse(t *testing.T) {
	s := mustSchema(t, enterpriseSchema)
	if got := s.Classes(); len(got) != 2 || got[0] != "empl" || got[1] != "hpe" {
		t.Errorf("Classes = %v", got)
	}
}

func TestSchemaParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`empl.sal -> num. empl.sal -> str.`, "declared twice"},
		{`empl.boss -> manager.`, "undeclared class"},
		{`mod(empl).sal -> num.`, "class.method -> type"},
		{`empl.rate@2026 -> num.`, "class.method -> type"},
		{`empl.sal -> 5.`, "must be symbols"},
		{`empl.exists -> sym.`, "needs no declaration"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src, "s"); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) err = %v, want mention of %q", c.src, err, c.wantSub)
		}
	}
}

func TestSchemaCheckConforming(t *testing.T) {
	s := mustSchema(t, enterpriseSchema)
	base := mustBase(t, `
phil.isa -> empl / pos -> mgr / sal -> 4000 / name -> "Phil".
bob.isa -> empl / boss -> phil / sal -> 4200.
cat.species -> feline.   % unclassed: ignored
`)
	if vs := s.Check(base, Options{}); len(vs) != 0 {
		t.Errorf("violations on conforming base: %v", vs)
	}
}

func TestSchemaCheckViolations(t *testing.T) {
	s := mustSchema(t, enterpriseSchema)
	base := mustBase(t, `
phil.isa -> empl / sal -> lots.
bob.isa -> empl / boss -> nobody / name -> 42.
eva.isa -> empl / boss -> cat.
cat.species -> feline.
`)
	vs := s.Check(base, Options{})
	var msgs []string
	for _, v := range vs {
		msgs = append(msgs, v.String())
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"phil (class empl): sal -> lots does not conform to num",
		"bob (class empl): boss -> nobody does not conform to empl",
		"bob (class empl): name -> 42 does not conform to str",
		"eva (class empl): boss -> cat does not conform to empl",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing violation %q in:\n%s", want, joined)
		}
	}
	if len(vs) != 4 {
		t.Errorf("got %d violations, want 4:\n%s", len(vs), joined)
	}
}

func TestSchemaRequireDeclared(t *testing.T) {
	s := mustSchema(t, enterpriseSchema)
	base := mustBase(t, `phil.isa -> empl / hobby -> chess / sal -> 10.`)
	if vs := s.Check(base, Options{}); len(vs) != 0 {
		t.Errorf("open schema flagged undeclared method: %v", vs)
	}
	vs := s.Check(base, Options{RequireDeclared: true})
	if len(vs) != 1 || !strings.Contains(vs[0].String(), "hobby is not declared") {
		t.Errorf("closed schema: %v", vs)
	}
}

// TestEvolutionReport: the Section 2.4 observation — after the enterprise
// update, class hpe gains members/methods and (in a typed world) the
// schema would have to follow.
func TestEvolutionReport(t *testing.T) {
	s := mustSchema(t, `
empl.sal -> num.
empl.pos -> sym.
empl.boss -> empl.
hpe.sal  -> num.
hpe.pos  -> sym.
`)
	before := mustBase(t, `
phil.isa -> empl / pos -> mgr / sal -> 4000.
bob.isa -> empl / boss -> phil / sal -> 4200.
`)
	prog, err := parser.Program(`
rule1: mod[E].sal -> (S, S') <- E.isa -> empl / pos -> mgr / sal -> S, S' = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S') <- E.isa -> empl / sal -> S, !E.pos -> mgr, S' = S * 1.1.
rule3: del[mod(E)].* <- mod(E).isa -> empl / boss -> B / sal -> SE, mod(B).isa -> empl / sal -> SB, SE > SB.
rule4: ins[mod(E)].isa -> hpe <- mod(E).isa -> empl / sal -> S, S > 4500, !del[mod(E)].isa -> empl.
`, "p")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New().Apply(before, prog)
	if err != nil {
		t.Fatal(err)
	}
	evs := s.EvolutionReport(before, res.Final)
	// Class hpe had no members before; now phil carries sal and pos.
	var hpe *Evolution
	for i := range evs {
		if evs[i].Class == "hpe" {
			hpe = &evs[i]
		}
	}
	if hpe == nil {
		t.Fatalf("no hpe evolution in %v", evs)
	}
	if strings.Join(hpe.Gained, ",") != "pos,sal" {
		t.Errorf("hpe gained %v", hpe.Gained)
	}
	// Class empl lost boss: its only carrier (bob) was fired.
	var empl *Evolution
	for i := range evs {
		if evs[i].Class == "empl" {
			empl = &evs[i]
		}
	}
	if empl == nil || strings.Join(empl.Lost, ",") != "boss" {
		t.Errorf("empl evolution = %+v", empl)
	}
	// The updated base still conforms to the schema.
	if vs := s.Check(res.Final, Options{}); len(vs) != 0 {
		t.Errorf("updated base violates schema: %v", vs)
	}
}
