package obs

import "sync"

// BoundedLabels caps the cardinality of one metric label: the first Max
// distinct values keep their own label, everything after collapses to
// "other". A /metrics endpoint stays bounded no matter how many tenants
// (or users, or keys) the process has seen — the hot set gets per-value
// series, the long tail is aggregated.
type BoundedLabels struct {
	Max int

	mu   sync.Mutex
	seen map[string]bool
}

// Overflow is the label value the long tail collapses to.
const Overflow = "other"

// NewBoundedLabels returns a bound admitting the first max distinct
// values (max <= 0 admits none: every value maps to Overflow).
func NewBoundedLabels(max int) *BoundedLabels {
	return &BoundedLabels{Max: max, seen: make(map[string]bool)}
}

// Value maps v to itself while the bound has room (admitting it
// permanently on first sight), and to Overflow once full. A value
// admitted once keeps its own series forever — a series that exists in
// one scrape never migrates to "other" in the next.
func (b *BoundedLabels) Value(v string) string {
	if b == nil {
		return Overflow
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.seen[v] {
		return v
	}
	if len(b.seen) < b.Max {
		b.seen[v] = true
		return v
	}
	return Overflow
}
