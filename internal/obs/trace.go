package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed node of a trace tree. Spans are built by one
// goroutine at a time (the evaluation pipeline is sequential between
// parallel sections; parallel sections record timings first and attach
// spans afterwards). All methods are nil-safe no-ops, so instrumented
// code can call them unconditionally and pays nothing — not even an
// allocation — when tracing is disabled.
type Span struct {
	Name string `json:"name"`
	// StartUS and DurUS are microseconds relative to the trace start, so
	// a serialized trace is self-contained and Chrome-exportable.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Attrs are ordered key-value annotations (firing counts, delta
	// sizes, rule names, ...).
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	trace *Trace
	start time.Time
}

// Attr is one span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Trace is one completed (or in-flight) span tree with identity and
// metadata. The zero value is not usable; call NewTrace. A nil *Trace is
// safe to use: every method no-ops and Root returns nil.
type Trace struct {
	// ID is a 32-hex-character trace id (W3C trace-context compatible).
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	DurUS int64     `json:"dur_us"`
	// Meta carries out-of-band identifiers (request_id, traceparent, ...).
	Meta map[string]string `json:"meta,omitempty"`
	Root *Span             `json:"root"`
}

// NewTrace starts a trace whose root span carries the given name.
func NewTrace(name string) *Trace {
	t := &Trace{ID: NewTraceID(), Name: name, Start: time.Now()}
	t.Root = &Span{Name: name, trace: t, start: t.Start}
	return t
}

// SetMeta attaches one metadata key to the trace.
func (t *Trace) SetMeta(key, value string) {
	if t == nil || value == "" {
		return
	}
	if t.Meta == nil {
		t.Meta = make(map[string]string)
	}
	t.Meta[key] = value
}

// Finish ends the root span and stamps the total duration.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.Root.End()
	t.DurUS = t.Root.DurUS
}

// SpanCount returns the number of spans in the tree.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	return t.Root.count()
}

func (s *Span) count() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children {
		n += c.count()
	}
	return n
}

// StartChild opens a child span starting now. On a nil receiver it
// returns nil, so disabled tracing costs a nil check and nothing else.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{Name: name, trace: s.trace, start: now, StartUS: s.trace.offsetUS(now)}
	s.Children = append(s.Children, c)
	return c
}

// AddChild attaches a child with an explicit start and duration —
// measured elsewhere, e.g. on a parallel worker — and returns it.
func (s *Span) AddChild(name string, start time.Time, dur time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		Name:    name,
		trace:   s.trace,
		start:   start,
		StartUS: s.trace.offsetUS(start),
		DurUS:   dur.Microseconds(),
	}
	s.Children = append(s.Children, c)
	return c
}

// End closes the span, fixing its duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.DurUS = time.Since(s.start).Microseconds()
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, value int64) { s.SetAttr(key, value) }

func (t *Trace) offsetUS(at time.Time) int64 {
	if t == nil {
		return 0
	}
	return at.Sub(t.Start).Microseconds()
}

// WriteTree renders the span tree as an indented text outline:
//
//	apply 12.4ms
//	├─ parse 0.2ms
//	└─ stratum 8.1ms (stratum=1 iterations=3)
//	   └─ ...
func (t *Trace) WriteTree(w io.Writer) {
	if t == nil || t.Root == nil {
		return
	}
	fmt.Fprintf(w, "trace %s %s %s\n", t.ID, t.Name, formatUS(t.DurUS))
	writeSpan(w, t.Root, "")
}

func writeSpan(w io.Writer, s *Span, prefix string) {
	for i, c := range s.Children {
		branch, cont := "├─ ", "│  "
		if i == len(s.Children)-1 {
			branch, cont = "└─ ", "   "
		}
		fmt.Fprintf(w, "%s%s%s %s%s\n", prefix, branch, c.Name, formatUS(c.DurUS), formatAttrs(c.Attrs))
		writeSpan(w, c, prefix+cont)
	}
}

func formatAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(" (")
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", a.Key, a.Value)
	}
	b.WriteByte(')')
	return b.String()
}

func formatUS(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// chromeEvent is one trace_event record of the Chrome/Perfetto JSON
// format (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace_event format, which
// both chrome://tracing and Perfetto load directly.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChrome serializes the trace in Chrome trace_event JSON ("X"
// complete events, microsecond timestamps relative to the trace start),
// loadable in chrome://tracing and Perfetto.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("obs: nil trace")
	}
	events := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Tid: 1, Args: map[string]any{"name": "verlog"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: 1, Args: map[string]any{"name": t.Name}},
	}
	events = appendChrome(events, t.Root)
	other := map[string]string{"trace_id": t.ID, "start": t.Start.UTC().Format(time.RFC3339Nano)}
	for k, v := range t.Meta {
		other[k] = v
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms", OtherData: other})
}

func appendChrome(events []chromeEvent, s *Span) []chromeEvent {
	ev := chromeEvent{Name: s.Name, Ph: "X", Ts: s.StartUS, Dur: s.DurUS, Pid: 1, Tid: 1}
	if len(s.Attrs) > 0 {
		ev.Args = make(map[string]any, len(s.Attrs))
		for _, a := range s.Attrs {
			ev.Args[a.Key] = a.Value
		}
	}
	events = append(events, ev)
	for _, c := range s.Children {
		events = appendChrome(events, c)
	}
	return events
}

// TraceRing is a bounded in-memory ring of the most recent completed
// traces. All methods are safe for concurrent use and nil-safe.
type TraceRing struct {
	mu     sync.Mutex
	traces []*Trace
	next   int
	full   bool
	total  int64
}

// NewTraceRing returns a ring keeping the last capacity traces (min 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{traces: make([]*Trace, capacity)}
}

// Add records one trace, evicting the oldest when full.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traces[r.next] = t
	r.next++
	r.total++
	if r.next == len(r.traces) {
		r.next, r.full = 0, true
	}
}

// Traces returns the retained traces, newest first.
func (r *TraceRing) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.traces)
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.traces)
		}
		out = append(out, r.traces[idx])
	}
	return out
}

// Get returns the retained trace with the given id, or nil.
func (r *TraceRing) Get(id string) *Trace {
	for _, t := range r.Traces() {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Total returns how many traces were ever added (including evicted ones).
func (r *TraceRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// NewTraceID returns 32 random hex characters (a W3C trace-id).
func NewTraceID() string { return randHex(16) }

// NewSpanID returns 16 random hex characters (a W3C parent-id).
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// Never in practice; a fixed id beats none.
		return strings.Repeat("0", 2*n-1) + "1"
	}
	return hex.EncodeToString(b)
}

// ParseTraceparent splits a W3C trace-context traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>") into its
// trace and parent ids. ok is false for malformed headers and for the
// all-zero ids the spec forbids.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", "", false
	}
	if parts[0] == "ff" { // forbidden version
		return "", "", false
	}
	for _, p := range parts[:3] {
		if !isLowerHex(p) {
			return "", "", false
		}
	}
	if !isLowerHex(parts[3]) {
		return "", "", false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

// FormatTraceparent renders a version-00 traceparent with the sampled
// flag set.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// SortAttrs orders a span's attributes by key, recursively — test helper
// for deterministic comparisons; live code preserves insertion order.
func (s *Span) SortAttrs() {
	if s == nil {
		return
	}
	sort.Slice(s.Attrs, func(i, j int) bool { return s.Attrs[i].Key < s.Attrs[j].Key })
	for _, c := range s.Children {
		c.SortAttrs()
	}
}
