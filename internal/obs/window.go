package obs

import (
	"fmt"
	"sync"
	"time"
)

// Window is a sliding-window view over one latency stream: observations
// land in a private histogram, and a fixed ring of timestamped snapshots
// of that histogram lets Stats diff "now" against "~a minute ago" to
// produce p50/p95/p99 and request/error rates over recent traffic rather
// than since process start. Snapshots are taken lazily on Stats calls
// (throttled to one per granule), so an idle window costs nothing and
// tests stay deterministic — there is no background ticker.
//
// A nil *Window is safe: Observe is a no-op and Stats returns zeros.
type Window struct {
	span time.Duration    // how far back the window reaches (~60s)
	gran time.Duration    // minimum spacing between stored snapshots
	now  func() time.Time // injectable clock for tests

	hist *Histogram
	errs Counter

	mu   sync.Mutex
	ring []winSnap // circular buffer, capacity span/gran+2
	head int       // index of the oldest stored snapshot
	size int       // number of valid entries
}

// winSnap is one timestamped capture of the window's histogram totals.
type winSnap struct {
	at     time.Time
	counts []int64 // per-bucket, non-cumulative; last is +Inf
	count  int64
	errs   int64
}

// WindowStats is one sliding-window reading. Percentiles are estimated
// from LatencyBuckets bounds with linear interpolation inside the bucket,
// the same way Prometheus histogram_quantile works.
type WindowStats struct {
	// WindowSeconds is the span the numbers actually cover — usually
	// close to the configured window, shorter right after startup.
	WindowSeconds float64 `json:"window_seconds"`
	Count         int64   `json:"count"`
	Errors        int64   `json:"errors"`
	Rate          float64 `json:"rate"`       // requests per second
	ErrorRate     float64 `json:"error_rate"` // errors per second
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
}

// NewWindow returns a window reaching span back in time with snapshots at
// most gran apart. Zero values default to 60s / 1s.
func NewWindow(span, gran time.Duration) *Window {
	if span <= 0 {
		span = time.Minute
	}
	if gran <= 0 {
		gran = time.Second
	}
	w := &Window{
		span: span,
		gran: gran,
		now:  time.Now,
		hist: newHistogram(),
		ring: make([]winSnap, int(span/gran)+2),
	}
	// A zero baseline so the very first Stats call has something to diff
	// against.
	w.store(w.capture(w.now()))
	return w
}

// Observe records one request with its duration and error-ness.
func (w *Window) Observe(d time.Duration, isErr bool) {
	if w == nil {
		return
	}
	w.hist.Observe(d)
	if isErr {
		w.errs.Inc()
	}
}

// capture reads the histogram totals without locking w.mu (the histogram
// is atomic).
func (w *Window) capture(now time.Time) winSnap {
	s := winSnap{
		at:     now,
		counts: make([]int64, len(w.hist.counts)),
		count:  w.hist.Count(),
		errs:   w.errs.Value(),
	}
	for i := range w.hist.counts {
		s.counts[i] = w.hist.counts[i].Load()
	}
	return s
}

// store pushes a snapshot onto the ring, dropping the oldest when full.
// Caller holds w.mu (or is the constructor).
func (w *Window) store(s winSnap) {
	if w.size == len(w.ring) {
		w.head = (w.head + 1) % len(w.ring)
		w.size--
	}
	w.ring[(w.head+w.size)%len(w.ring)] = s
	w.size++
}

// Stats returns the current sliding-window reading, storing a fresh
// snapshot when at least one granule has passed since the last one.
func (w *Window) Stats() WindowStats {
	if w == nil {
		return WindowStats{}
	}
	now := w.now()
	cur := w.capture(now)

	w.mu.Lock()
	newest := w.ring[(w.head+w.size-1)%len(w.ring)]
	if now.Sub(newest.at) >= w.gran {
		w.store(cur)
	}
	// Evict snapshots older than the span, always keeping one as the
	// diff baseline.
	cutoff := now.Add(-w.span)
	for w.size > 1 && w.ring[w.head].at.Before(cutoff) {
		w.head = (w.head + 1) % len(w.ring)
		w.size--
	}
	base := w.ring[w.head]
	w.mu.Unlock()

	elapsed := cur.at.Sub(base.at)
	st := WindowStats{
		WindowSeconds: elapsed.Seconds(),
		Count:         cur.count - base.count,
		Errors:        cur.errs - base.errs,
	}
	if sec := elapsed.Seconds(); sec > 0.001 {
		st.Rate = float64(st.Count) / sec
		st.ErrorRate = float64(st.Errors) / sec
	}
	if st.Count > 0 {
		diff := make([]int64, len(cur.counts))
		for i := range diff {
			diff[i] = cur.counts[i] - base.counts[i]
		}
		st.P50MS = bucketQuantile(diff, st.Count, 0.50) * 1000
		st.P95MS = bucketQuantile(diff, st.Count, 0.95) * 1000
		st.P99MS = bucketQuantile(diff, st.Count, 0.99) * 1000
	}
	return st
}

// bucketQuantile estimates the q-quantile in seconds from non-cumulative
// bucket counts over LatencyBuckets (+Inf last), interpolating linearly
// within the landing bucket. Observations in +Inf report the highest
// finite bound, as histogram_quantile does.
func bucketQuantile(counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(LatencyBuckets) {
				return LatencyBuckets[len(LatencyBuckets)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = LatencyBuckets[i-1]
			}
			upper := LatencyBuckets[i]
			return lower + (upper-lower)*((rank-cum)/float64(c))
		}
		cum = next
	}
	return LatencyBuckets[len(LatencyBuckets)-1]
}

// CheckFunc probes one aspect of node health; nil means healthy, an error
// carries the human-readable reason it is not.
type CheckFunc func() error

// CheckResult is one named probe's outcome, as served by /v1/readyz.
type CheckResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Checks is a registry of named health probes. Registration order is
// preserved in Run's results so output is stable.
type Checks struct {
	mu    sync.Mutex
	order []string
	fns   map[string]CheckFunc
}

// NewChecks returns an empty probe registry.
func NewChecks() *Checks {
	return &Checks{fns: make(map[string]CheckFunc)}
}

// Register adds (or replaces) the named probe.
func (c *Checks) Register(name string, fn CheckFunc) {
	if c == nil || fn == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.fns[name]; !ok {
		c.order = append(c.order, name)
	}
	c.fns[name] = fn
}

// Run executes every probe and reports each outcome plus the conjunction.
// A probe that panics is reported as failing rather than taking the
// health endpoint down with it.
func (c *Checks) Run() (results []CheckResult, ok bool) {
	if c == nil {
		return nil, true
	}
	c.mu.Lock()
	names := append([]string(nil), c.order...)
	fns := make([]CheckFunc, len(names))
	for i, n := range names {
		fns[i] = c.fns[n]
	}
	c.mu.Unlock()

	ok = true
	for i, fn := range fns {
		res := CheckResult{Name: names[i], OK: true}
		if err := runCheck(fn); err != nil {
			res.OK, res.Detail, ok = false, err.Error(), false
		}
		results = append(results, res)
	}
	return results, ok
}

func runCheck(fn CheckFunc) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("check panicked: %v", r)
		}
	}()
	return fn()
}
