package obs

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives a Window deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestWindow(span, gran time.Duration) (*Window, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	w := NewWindow(span, gran)
	w.now = clk.now
	// Rebase the constructor's baseline snapshot onto the fake clock.
	w.ring[w.head].at = clk.t
	return w, clk
}

func TestWindowRatesAndPercentiles(t *testing.T) {
	w, clk := newTestWindow(60*time.Second, time.Second)

	// 100 observations at 1ms, 10 at 100ms, 2 errors, over 10 seconds.
	for i := 0; i < 100; i++ {
		w.Observe(time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		w.Observe(100*time.Millisecond, i < 2)
	}
	clk.advance(10 * time.Second)

	st := w.Stats()
	if st.Count != 110 {
		t.Fatalf("Count = %d, want 110", st.Count)
	}
	if st.Errors != 2 {
		t.Fatalf("Errors = %d, want 2", st.Errors)
	}
	if st.Rate < 10.9 || st.Rate > 11.1 {
		t.Errorf("Rate = %g, want ~11/s", st.Rate)
	}
	if st.ErrorRate < 0.19 || st.ErrorRate > 0.21 {
		t.Errorf("ErrorRate = %g, want ~0.2/s", st.ErrorRate)
	}
	// p50 lands in the (0.5ms, 1ms] bucket; p99 in (50ms, 100ms].
	if st.P50MS <= 0.5 || st.P50MS > 1.0 {
		t.Errorf("P50MS = %g, want in (0.5, 1]", st.P50MS)
	}
	if st.P99MS <= 50 || st.P99MS > 100 {
		t.Errorf("P99MS = %g, want in (50, 100]", st.P99MS)
	}
	if st.P95MS > st.P99MS {
		t.Errorf("P95MS %g > P99MS %g", st.P95MS, st.P99MS)
	}
}

func TestWindowSlides(t *testing.T) {
	w, clk := newTestWindow(10*time.Second, time.Second)

	// Burst of traffic, then silence longer than the span: the burst must
	// age out of the window even though the histogram total keeps it.
	for i := 0; i < 50; i++ {
		w.Observe(time.Millisecond, false)
	}
	clk.advance(time.Second)
	if st := w.Stats(); st.Count != 50 {
		t.Fatalf("Count right after burst = %d, want 50", st.Count)
	}
	// Tick Stats once per second so snapshots accumulate, like a poller.
	for i := 0; i < 15; i++ {
		clk.advance(time.Second)
		w.Stats()
	}
	st := w.Stats()
	if st.Count != 0 {
		t.Errorf("Count after %gs idle = %d, want 0 (burst aged out)", st.WindowSeconds, st.Count)
	}
	if st.Rate != 0 {
		t.Errorf("Rate after idle = %g, want 0", st.Rate)
	}
	if st.WindowSeconds > 11.5 {
		t.Errorf("WindowSeconds = %g, want <= span+gran", st.WindowSeconds)
	}
}

func TestWindowSnapshotThrottle(t *testing.T) {
	w, clk := newTestWindow(60*time.Second, time.Second)
	// Hammer Stats within one granule: the ring must not grow past the
	// baseline plus at most one stored snapshot.
	for i := 0; i < 100; i++ {
		w.Observe(time.Microsecond, false)
		w.Stats()
	}
	if w.size > 2 {
		t.Fatalf("ring size = %d after sub-granule Stats calls, want <= 2", w.size)
	}
	// And the live capture still sees un-snapshotted observations.
	clk.advance(100 * time.Millisecond)
	w.Observe(time.Microsecond, false)
	if st := w.Stats(); st.Count != 101 {
		t.Fatalf("Count = %d, want 101 (live capture)", st.Count)
	}
}

func TestWindowNilSafe(t *testing.T) {
	var w *Window
	w.Observe(time.Second, true)
	if st := w.Stats(); st.Count != 0 || st.Rate != 0 {
		t.Fatalf("nil window stats = %+v, want zeros", st)
	}
}

func TestChecks(t *testing.T) {
	c := NewChecks()
	if res, ok := c.Run(); !ok || len(res) != 0 {
		t.Fatalf("empty checks: ok=%v res=%v", ok, res)
	}
	c.Register("repo", func() error { return nil })
	c.Register("repl_lag", func() error { return errors.New("lag 42 seqs over limit") })
	c.Register("panicky", func() error { panic("boom") })

	res, ok := c.Run()
	if ok {
		t.Fatalf("Run ok = true with a failing check")
	}
	if len(res) != 3 || res[0].Name != "repo" || res[1].Name != "repl_lag" || res[2].Name != "panicky" {
		t.Fatalf("results out of order: %+v", res)
	}
	if !res[0].OK || res[1].OK || res[2].OK {
		t.Fatalf("unexpected OK flags: %+v", res)
	}
	if res[1].Detail != "lag 42 seqs over limit" {
		t.Errorf("detail = %q", res[1].Detail)
	}
	if res[2].Detail == "" {
		t.Errorf("panicking check has empty detail")
	}

	// Re-registering replaces in place, preserving order.
	c.Register("repl_lag", func() error { return nil })
	res, _ = c.Run()
	if res[1].Name != "repl_lag" || !res[1].OK {
		t.Fatalf("replaced check: %+v", res[1])
	}

	var nilChecks *Checks
	nilChecks.Register("x", func() error { return nil })
	if _, ok := nilChecks.Run(); !ok {
		t.Fatalf("nil Checks must report ok")
	}
}
