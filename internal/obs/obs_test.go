package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("verlog_applies_total", "applies")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same instrument.
	if r.Counter("verlog_applies_total", "applies") != c {
		t.Error("counter not deduplicated")
	}
	g := r.Gauge("verlog_up", "up")
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %g", g.Value())
	}
	// Labeled series are distinct.
	a := r.Counter("verlog_http_requests_total", "reqs", "route", "/v1/apply", "code", "200")
	b := r.Counter("verlog_http_requests_total", "reqs", "route", "/v1/query", "code", "200")
	if a == b {
		t.Error("distinct label sets shared an instrument")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Error("label series not independent")
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *SlowLog
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(time.Second)
	l.Add(SlowEntry{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || len(l.Entries()) != 0 {
		t.Error("nil instruments returned non-zero values")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("verlog_apply_seconds", "apply latency")
	h.Observe(5 * time.Microsecond)  // below first bound
	h.Observe(50 * time.Microsecond) // exactly the 0.00005 bound (inclusive)
	h.Observe(3 * time.Millisecond)  // into the 0.005 bucket
	h.Observe(20 * time.Second)      // +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	want := 5*time.Microsecond + 50*time.Microsecond + 3*time.Millisecond + 20*time.Second
	if h.Sum() != want {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, line := range []string{
		`verlog_apply_seconds_bucket{le="0.00001"} 1`,
		`verlog_apply_seconds_bucket{le="0.00005"} 2`,
		`verlog_apply_seconds_bucket{le="0.0001"} 2`,
		`verlog_apply_seconds_bucket{le="0.005"} 3`,
		`verlog_apply_seconds_bucket{le="10"} 3`,
		`verlog_apply_seconds_bucket{le="+Inf"} 4`,
		`verlog_apply_seconds_count 4`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestExpositionGolden pins the exposition structure for a fixed registry:
// HELP/TYPE lines and series keys are stable output, values vary.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("verlog_http_requests_total", "HTTP requests by route and status code.", "route", "/v1/apply", "code", "200").Inc()
	r.Gauge("verlog_recovery_seconds", "Duration of the last open-time recovery.").Set(0.25)
	r.Histogram("verlog_journal_fsync_seconds", "Journal fsync latency.").Observe(2 * time.Millisecond)

	var b strings.Builder
	r.WritePrometheus(&b)
	var structure []string
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			structure = append(structure, line)
		} else {
			structure = append(structure, strings.SplitN(line, " ", 2)[0])
		}
	}
	got := strings.Join(structure, "\n")
	want := strings.TrimSpace(`
# HELP verlog_http_requests_total HTTP requests by route and status code.
# TYPE verlog_http_requests_total counter
verlog_http_requests_total{route="/v1/apply",code="200"}
# HELP verlog_recovery_seconds Duration of the last open-time recovery.
# TYPE verlog_recovery_seconds gauge
verlog_recovery_seconds
# HELP verlog_journal_fsync_seconds Journal fsync latency.
# TYPE verlog_journal_fsync_seconds histogram
verlog_journal_fsync_seconds_bucket{le="0.00001"}
verlog_journal_fsync_seconds_bucket{le="0.000025"}
verlog_journal_fsync_seconds_bucket{le="0.00005"}
verlog_journal_fsync_seconds_bucket{le="0.0001"}
verlog_journal_fsync_seconds_bucket{le="0.00025"}
verlog_journal_fsync_seconds_bucket{le="0.0005"}
verlog_journal_fsync_seconds_bucket{le="0.001"}
verlog_journal_fsync_seconds_bucket{le="0.0025"}
verlog_journal_fsync_seconds_bucket{le="0.005"}
verlog_journal_fsync_seconds_bucket{le="0.01"}
verlog_journal_fsync_seconds_bucket{le="0.025"}
verlog_journal_fsync_seconds_bucket{le="0.05"}
verlog_journal_fsync_seconds_bucket{le="0.1"}
verlog_journal_fsync_seconds_bucket{le="0.25"}
verlog_journal_fsync_seconds_bucket{le="0.5"}
verlog_journal_fsync_seconds_bucket{le="1"}
verlog_journal_fsync_seconds_bucket{le="2.5"}
verlog_journal_fsync_seconds_bucket{le="5"}
verlog_journal_fsync_seconds_bucket{le="10"}
verlog_journal_fsync_seconds_bucket{le="+Inf"}
verlog_journal_fsync_seconds_sum
verlog_journal_fsync_seconds_count
`)
	if got != want {
		t.Errorf("exposition structure:\n%s\nwant:\n%s", got, want)
	}
}

// TestConcurrentInstruments hammers one registry from many goroutines;
// run under -race (make check) it verifies the atomics and registry locks.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, rounds = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r.Counter("verlog_ops_total", "ops").Inc()
				r.Counter("verlog_ops_by_worker_total", "ops", "w", string(rune('a'+w))).Inc()
				r.Histogram("verlog_op_seconds", "op latency").Observe(time.Duration(i) * time.Microsecond)
				r.Gauge("verlog_last", "last").Set(float64(i))
				if i%500 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("verlog_ops_total", "ops").Value(); got != workers*rounds {
		t.Errorf("ops = %d, want %d", got, workers*rounds)
	}
	if got := r.Histogram("verlog_op_seconds", "op latency").Count(); got != workers*rounds {
		t.Errorf("histogram count = %d, want %d", got, workers*rounds)
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3)
	for i := 0; i < 5; i++ {
		l.Add(SlowEntry{RequestID: string(rune('a' + i))})
	}
	got := l.Entries()
	if len(got) != 3 || got[0].RequestID != "e" || got[2].RequestID != "c" {
		t.Errorf("entries = %+v", got)
	}
	if l.Total() != 5 {
		t.Errorf("total = %d", l.Total())
	}
}

// TestSlowLogConcurrent hammers one ring from many goroutines; under
// -race (make check) it verifies the ring's locking.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(8)
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l.Add(SlowEntry{RequestID: string(rune('a' + w)), Status: i})
				if i%100 == 0 {
					l.Entries()
					l.Total()
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Total() != workers*rounds {
		t.Errorf("total = %d, want %d", l.Total(), workers*rounds)
	}
	if got := len(l.Entries()); got != 8 {
		t.Errorf("retained = %d, want 8", got)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, name := range []string{
		"verlog_goroutines ", "verlog_heap_bytes ",
		"verlog_gc_pause_seconds ", "verlog_gc_runs_total ",
		`verlog_build_info{version=`,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %q:\n%s", name, out)
		}
	}
	if r.Gauge("verlog_goroutines", "Current number of goroutines.").Value() < 1 {
		t.Error("goroutine gauge not collected")
	}
	if v, c := BuildInfo(); v == "" || c == "" {
		t.Errorf("BuildInfo() = %q, %q", v, c)
	}
}

func TestExpvarSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("verlog_x_total", "x").Add(7)
	r.Histogram("verlog_y_seconds", "y").Observe(time.Second)
	snap := r.Expvar()().(map[string]any)
	if snap["verlog_x_total"] != int64(7) {
		t.Errorf("snapshot = %v", snap)
	}
	if snap["verlog_y_seconds_count"] != int64(1) {
		t.Errorf("snapshot = %v", snap)
	}
	// PublishExpvar twice must not panic.
	PublishExpvar("verlog_test_metrics", r)
	PublishExpvar("verlog_test_metrics", r)
}
