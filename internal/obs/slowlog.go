package obs

import (
	"sync"
	"time"
)

// SlowEntry is one slow request retained by a SlowLog. RequestID joins the
// entry to the structured request log and to the caller's own trace (the
// client sends its generated id as X-Request-Id).
type SlowEntry struct {
	RequestID  string    `json:"request_id"`
	Method     string    `json:"method"`
	Path       string    `json:"path"`
	Status     int       `json:"status"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	// Detail is an endpoint-specific hint (e.g. the first line of the
	// program a slow apply evaluated).
	Detail string `json:"detail,omitempty"`
	// TraceID joins the entry to a W3C trace (the request's traceparent)
	// and to the retained trace ring when the request was traced.
	TraceID string `json:"trace_id,omitempty"`
	// Tenant is the tenant of a tenant-prefixed request, capped through
	// the same bounded label set as the tenant request counter ("" outside
	// the /v1/t/ subtree).
	Tenant string `json:"tenant,omitempty"`
}

// SlowLog is a bounded in-memory ring of the most recent slow requests.
// All methods are safe for concurrent use.
type SlowLog struct {
	mu      sync.Mutex
	entries []SlowEntry
	next    int
	full    bool
	total   int64
}

// NewSlowLog returns a ring keeping the last capacity entries (minimum 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{entries: make([]SlowEntry, capacity)}
}

// Add records one entry, evicting the oldest when full.
func (l *SlowLog) Add(e SlowEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[l.next] = e
	l.next++
	l.total++
	if l.next == len(l.entries) {
		l.next, l.full = 0, true
	}
}

// Entries returns the retained entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.entries)
	}
	out := make([]SlowEntry, 0, n)
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.entries)
		}
		out = append(out, l.entries[idx])
	}
	return out
}

// Total returns how many entries were ever added (including evicted ones).
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
