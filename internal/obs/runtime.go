package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterRuntimeMetrics registers Go runtime health gauges in r, refreshed
// by a collector at scrape time: goroutine count, heap bytes, cumulative GC
// pause seconds and GC cycle count, plus a constant verlog_build_info gauge
// labelled with the build's version and VCS commit.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	goroutines := r.Gauge("verlog_goroutines", "Current number of goroutines.")
	heap := r.Gauge("verlog_heap_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	// Cumulative totals: the pause time is fractional so it stays a gauge
	// (named without _total — that suffix is reserved for counters); the
	// cycle count is a true counter fed by deltas between scrapes.
	gcPause := r.Gauge("verlog_gc_pause_seconds", "Cumulative GC stop-the-world pause seconds.")
	gcRuns := r.Counter("verlog_gc_runs_total", "Completed GC cycles.")
	version, commit := BuildInfo()
	r.Gauge("verlog_build_info", "Build metadata; value is always 1.",
		"version", version, "commit", commit).Set(1)
	var lastGC uint32
	r.RegisterCollector(func() {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heap.Set(float64(m.HeapAlloc))
		gcPause.Set(float64(m.PauseTotalNs) / 1e9)
		gcRuns.Add(int64(m.NumGC - lastGC))
		lastGC = m.NumGC
	})
}

// BuildInfo returns the module version and VCS revision embedded by the Go
// toolchain ("devel"/"unknown" when absent — e.g. in plain `go test`
// binaries).
func BuildInfo() (version, commit string) {
	version, commit = "devel", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, commit
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			commit = s.Value
			if len(commit) > 12 {
				commit = commit[:12]
			}
		}
	}
	return version, commit
}
