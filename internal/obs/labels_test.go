package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestBoundedLabels(t *testing.T) {
	b := NewBoundedLabels(2)
	if got := b.Value("a"); got != "a" {
		t.Fatalf("first value = %q", got)
	}
	if got := b.Value("b"); got != "b" {
		t.Fatalf("second value = %q", got)
	}
	if got := b.Value("c"); got != Overflow {
		t.Fatalf("third value = %q, want %q", got, Overflow)
	}
	// Admitted values stay stable after the bound fills.
	if got := b.Value("a"); got != "a" {
		t.Fatalf("admitted value migrated: %q", got)
	}
	var nilB *BoundedLabels
	if got := nilB.Value("x"); got != Overflow {
		t.Fatalf("nil bound = %q", got)
	}
}

func TestBoundedLabelsConcurrent(t *testing.T) {
	b := NewBoundedLabels(8)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v := fmt.Sprintf("v%d", i%20)
				got := b.Value(v)
				if got != v && got != Overflow {
					t.Errorf("Value(%q) = %q", v, got)
				}
			}
		}(w)
	}
	wg.Wait()
	distinct := map[string]bool{}
	for i := 0; i < 20; i++ {
		v := fmt.Sprintf("v%d", i)
		if b.Value(v) == v {
			distinct[v] = true
		}
	}
	if len(distinct) != 8 {
		t.Fatalf("admitted %d values, want exactly 8", len(distinct))
	}
}
