package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	var tr *Trace
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	c.End()
	c.SetAttr("k", 1)
	c.SetInt("n", 2)
	if c.AddChild("y", time.Now(), time.Millisecond) != nil {
		t.Error("nil span AddChild returned non-nil")
	}
	tr.SetMeta("k", "v")
	tr.Finish()
	if tr.SpanCount() != 0 {
		t.Error("nil trace has spans")
	}
	var b strings.Builder
	tr.WriteTree(&b)
	if b.Len() != 0 {
		t.Error("nil trace rendered output")
	}
	if err := tr.WriteChrome(&b); err == nil {
		t.Error("nil trace WriteChrome did not error")
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTrace("apply")
	if len(tr.ID) != 32 {
		t.Fatalf("trace id %q, want 32 hex chars", tr.ID)
	}
	root := tr.Root
	parse := root.StartChild("parse")
	parse.SetInt("rules", 4)
	parse.End()
	st := root.StartChild("stratum")
	it := st.StartChild("iteration")
	it.SetAttr("fresh_updates", 3)
	it.End()
	st.End()
	st.AddChild("rule r1", tr.Start, 2*time.Millisecond).SetInt("fired", 3)
	tr.SetMeta("request_id", "req1")
	tr.Finish()

	if tr.SpanCount() != 5 {
		t.Errorf("span count = %d, want 5", tr.SpanCount())
	}
	if tr.DurUS != root.DurUS {
		t.Errorf("trace dur %d != root dur %d", tr.DurUS, root.DurUS)
	}
	if len(root.Children) != 2 || root.Children[0].Name != "parse" {
		t.Fatalf("children = %+v", root.Children)
	}
	rule := st.Children[1]
	if rule.Name != "rule r1" || rule.DurUS != 2000 {
		t.Errorf("retro child = %+v", rule)
	}
	var b strings.Builder
	tr.WriteTree(&b)
	out := b.String()
	for _, want := range []string{"apply", "├─ parse", "└─ stratum", "rule r1", "fired=3", "fresh_updates=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTrace("apply")
	p := tr.Root.StartChild("parse")
	p.SetInt("rules", 2)
	p.End()
	tr.SetMeta("request_id", "reqX")
	tr.Finish()

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData["trace_id"] != tr.ID || doc.OtherData["request_id"] != "reqX" {
		t.Errorf("otherData = %v", doc.OtherData)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Ts == nil || ev.Pid != 1 || ev.Tid != 1 {
				t.Errorf("bad complete event %+v", ev)
			}
			if ev.Name == "parse" && ev.Args["rules"] != float64(2) {
				t.Errorf("parse args = %v", ev.Args)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 2 || meta != 2 {
		t.Errorf("events: %d complete, %d metadata", complete, meta)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(2)
	var ids []string
	for i := 0; i < 3; i++ {
		tr := NewTrace("apply")
		tr.Finish()
		r.Add(tr)
		ids = append(ids, tr.ID)
	}
	got := r.Traces()
	if len(got) != 2 || got[0].ID != ids[2] || got[1].ID != ids[1] {
		t.Errorf("ring = %v, want newest first [%s %s]", got, ids[2], ids[1])
	}
	if r.Total() != 3 {
		t.Errorf("total = %d", r.Total())
	}
	if r.Get(ids[1]) == nil || r.Get(ids[0]) != nil {
		t.Error("Get: retained/evicted mismatch")
	}
	// Nil-safety.
	var nilRing *TraceRing
	nilRing.Add(NewTrace("x"))
	if nilRing.Traces() != nil || nilRing.Total() != 0 {
		t.Error("nil ring not empty")
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace("apply")
				tr.Finish()
				r.Add(tr)
				if i%50 == 0 {
					r.Traces()
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8*200 {
		t.Errorf("total = %d", r.Total())
	}
}

func TestTraceparent(t *testing.T) {
	id, span := NewTraceID(), NewSpanID()
	h := FormatTraceparent(id, span)
	gotID, gotSpan, ok := ParseTraceparent(h)
	if !ok || gotID != id || gotSpan != span {
		t.Fatalf("round trip %q -> %q %q %v", h, gotID, gotSpan, ok)
	}
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, _, ok := ParseTraceparent(" " + valid + " "); !ok {
		t.Error("valid header with whitespace rejected")
	}
	for _, bad := range []string{
		"",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", // missing flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // forbidden version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero parent id
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
		"00-0af7651916cd43dd8448eb211c80319-b7ad6b7169203331-01",  // short trace id
		"not a header",
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("accepted malformed traceparent %q", bad)
		}
	}
}
