// Package obs is the observability layer: zero-dependency counters,
// gauges and latency histograms backed by atomics, exposed in Prometheus
// text format and via expvar. Every layer of the system (eval, repository,
// server) reports through instruments created here; the metric names are
// the stable seam later scaling work (batching, sharding) reports through.
//
// Instruments are nil-safe: calling Inc/Add/Observe/Set on a nil instrument
// is a no-op, so packages can hold plain pointers and skip wiring checks on
// hot paths.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetDuration sets the gauge to d in seconds.
func (g *Gauge) SetDuration(d time.Duration) { g.Set(d.Seconds()) }

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// LatencyBuckets are the histogram upper bounds in seconds: 10µs to 10s,
// roughly one bucket per 2.5x. The sub-100µs bounds resolve the fast eval
// stages (parse, safety, stratify) that would otherwise collapse into one
// bucket; the top covers a long fixpoint evaluation.
var LatencyBuckets = []float64{
	0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram (LatencyBuckets plus +Inf).
type Histogram struct {
	counts   []atomic.Int64 // per-bucket (non-cumulative); last is +Inf
	count    atomic.Int64
	sumNanos atomic.Int64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(LatencyBuckets)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := sort.SearchFloat64s(LatencyBuckets, s)
	// SearchFloat64s finds the first bucket >= s; observations equal to a
	// bound belong to that bucket (le is inclusive), which is what it gives.
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns how many observations were recorded (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNanos.Load())
}

// metric is an instrument registered in a family.
type metric interface{}

// family groups the series of one metric name with its help and type.
type family struct {
	name, help, typ string
	mu              sync.Mutex
	series          map[string]metric // label string -> instrument
	order           []string          // registration order of label strings
}

// Registry holds named metrics and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string

	collectorMu sync.Mutex
	collectors  []func()
}

// RegisterCollector adds a function invoked before every exposition
// (Prometheus or expvar). Collectors refresh gauges whose source of truth
// lives elsewhere — runtime memory stats, pool sizes — so the scrape sees
// current values without a background ticker. Collectors run outside the
// registry lock and may therefore use the registry freely.
func (r *Registry) RegisterCollector(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.collectorMu.Lock()
	r.collectors = append(r.collectors, fn)
	r.collectorMu.Unlock()
}

func (r *Registry) collect() {
	r.collectorMu.Lock()
	fns := append([]func(){}, r.collectors...)
	r.collectorMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString renders alternating key, value pairs into the canonical
// `{k="v",...}` form ("" when empty). Pairs must come in a fixed order per
// call site so repeated lookups hit the same series.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd number of label arguments")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(labels string, mk func() metric) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[labels]
	if !ok {
		m = mk()
		f.series[labels] = m
		f.order = append(f.order, labels)
	}
	return m
}

// Counter returns (creating on first use) the counter name with the given
// alternating key, value label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, "counter")
	return f.get(labelString(labels), func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) the gauge name with the given
// labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, "gauge")
	return f.get(labelString(labels), func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating on first use) the histogram name with the
// given labels.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	f := r.family(name, help, "histogram")
	return f.get(labelString(labels), func() metric { return newHistogram() }).(*Histogram)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, families in registration order, series in creation order.
// Registered collectors run first.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.collect()
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, ls := range f.order {
			switch m := f.series[ls].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, ls, m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %g\n", f.name, ls, m.Value())
			case *Histogram:
				writeHistogram(w, f.name, ls, m)
			}
		}
		f.mu.Unlock()
	}
}

// writeHistogram renders one histogram series: cumulative buckets, sum and
// count, merging the le label into any existing series labels.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return labels[:len(labels)-1] + fmt.Sprintf(",le=%q}", le)
	}
	var cum int64
	for i, ub := range LatencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(formatFloat(ub)), cum)
	}
	cum += h.counts[len(LatencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

func formatFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
}

// Handler serves the registry at GET /metrics in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Expvar returns an expvar.Func rendering a snapshot of every series as a
// flat map (histograms appear as name_count and name_sum_seconds).
func (r *Registry) Expvar() expvar.Func {
	return func() any {
		r.collect()
		out := make(map[string]any)
		r.mu.Lock()
		fams := make([]*family, 0, len(r.families))
		for _, n := range r.order {
			fams = append(fams, r.families[n])
		}
		r.mu.Unlock()
		for _, f := range fams {
			f.mu.Lock()
			for _, ls := range f.order {
				key := f.name + ls
				switch m := f.series[ls].(type) {
				case *Counter:
					out[key] = m.Value()
				case *Gauge:
					out[key] = m.Value()
				case *Histogram:
					out[key+"_count"] = m.Count()
					out[key+"_sum_seconds"] = m.Sum().Seconds()
				}
			}
			f.mu.Unlock()
		}
		return out
	}
}

var publishMu sync.Mutex

// PublishExpvar publishes the registry under name in the process-global
// expvar namespace. Unlike expvar.Publish it is safe to call for a name
// that is already published (the existing publication wins), so tests that
// build many servers do not panic.
func PublishExpvar(name string, r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) == nil {
		expvar.Publish(name, r.Expvar())
	}
}
