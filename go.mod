module verlog

go 1.22
