//go:build !race

package verlog

const raceDetectorEnabled = false
