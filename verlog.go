package verlog

import (
	"verlog/internal/analysis"
	"verlog/internal/core"
	"verlog/internal/derived"
	"verlog/internal/eval"
	"verlog/internal/objectbase"
	"verlog/internal/obs"
	"verlog/internal/parser"
	"verlog/internal/repository"
	"verlog/internal/schema"
	"verlog/internal/strata"
	"verlog/internal/term"
)

// Re-exported types. The implementation lives in internal packages; these
// aliases form the stable public surface.
type (
	// Program is a parsed update-program.
	Program = term.Program
	// Rule is one update-rule of a program.
	Rule = term.Rule
	// ObjectBase is a set of ground version-terms, indexed for evaluation.
	ObjectBase = objectbase.Base
	// Fact is one ground version-term.
	Fact = term.Fact
	// OID is an object identity.
	OID = term.OID
	// GVID is a ground version identity.
	GVID = term.GVID
	// Result is the outcome of applying a program: the fixpoint base with
	// all versions, the updated object base, and run statistics.
	Result = eval.Result
	// Binding is one answer to a Query.
	Binding = eval.Binding
	// Stratification is a computed strata assignment.
	Stratification = strata.Assignment
	// Option configures Apply and NewEngine.
	Option = core.Option
	// Engine applies programs under fixed options.
	Engine = core.Engine
	// Update is one fired ground update (visible in traces).
	Update = eval.Update
	// TraceEvent records one fired update with rule, stratum and iteration.
	TraceEvent = eval.TraceEvent
	// RuleStat is one rule's firing statistics from a traced run (see
	// Result.RuleStats).
	RuleStat = eval.RuleStat
	// Span is one timed operation of an evaluation span tree (WithSpan).
	Span = obs.Span
	// SpanTrace is a whole span tree with identity and metadata; its Root
	// is what WithSpan hangs the evaluation spans off.
	SpanTrace = obs.Trace
	// Diff is the fact-level difference between two object bases.
	Diff = objectbase.Diff
)

// Evaluation strategies for WithStrategy.
const (
	SemiNaive = eval.SemiNaive
	Naive     = eval.Naive
)

// Re-exported options.
var (
	// WithStrategy selects naive or semi-naive fixpoint iteration.
	WithStrategy = core.WithStrategy
	// WithTrace records every fired update in Result.Trace.
	WithTrace = core.WithTrace
	// WithMaxIterations bounds T_P applications per stratum.
	WithMaxIterations = core.WithMaxIterations
	// WithForbidNewObjects restricts updates to objects already in the base.
	WithForbidNewObjects = core.WithForbidNewObjects
	// WithParallelism evaluates on n workers (same fixpoint, less wall
	// clock).
	WithParallelism = core.WithParallelism
	// WithStaticPlanner disables statistics-based join ordering (ablation).
	WithStaticPlanner = core.WithStaticPlanner
	// WithInterpreted forces the map-substitution interpreter instead of
	// compiled match plans (ablation; identical fixpoint).
	WithInterpreted = core.WithInterpreted
	// WithSpan collects the evaluation as a span tree under the given span:
	// safety, stratification, every stratum's iterations down to per-rule
	// matching, and the copy phase. Use NewSpanTrace to build the tree.
	WithSpan = core.WithSpan
	// NewSpanTrace starts a named span tree; pass its Root to WithSpan and
	// call Finish after Apply returns.
	NewSpanTrace = obs.NewTrace
)

// Sym returns the symbol OID with the given name.
func Sym(name string) OID { return term.Sym(name) }

// Int returns the numeric OID for i.
func Int(i int64) OID { return term.Int(i) }

// Str returns the string-valued OID for s.
func Str(s string) OID { return term.Str(s) }

// NewEngine returns an engine that applies programs under the given
// options.
func NewEngine(opts ...Option) *Engine { return core.New(opts...) }

// ParseProgram parses an update-program in concrete syntax.
func ParseProgram(src string) (*Program, error) { return parser.Program(src, "program") }

// ParseProgramFile parses an update-program, naming the source in errors.
func ParseProgramFile(src, name string) (*Program, error) { return parser.Program(src, name) }

// ParseObjectBase parses an object base in concrete syntax and seeds the
// exists system method for every object.
func ParseObjectBase(src string) (*ObjectBase, error) { return parser.ObjectBase(src, "objectbase") }

// ParseObjectBaseFile parses an object base, naming the source in errors.
func ParseObjectBaseFile(src, name string) (*ObjectBase, error) {
	return parser.ObjectBase(src, name)
}

// NewObjectBase returns an empty object base.
func NewObjectBase() *ObjectBase { return objectbase.New() }

// Apply checks p (safety and stratifiability) and evaluates it bottom-up on
// ob. It returns the fixpoint base (all versions), the updated object base,
// and statistics. ob is not modified.
func Apply(ob *ObjectBase, p *Program, opts ...Option) (*Result, error) {
	return core.New(opts...).Apply(ob, p)
}

// Check validates a program without running it: safety of every rule and
// existence of a stratification fulfilling the paper's conditions (a)-(d).
func Check(p *Program) (*Stratification, error) { return core.New().Check(p) }

// Diagnostic is one finding of the static analyzer: a stable code
// ("V0001"), a severity, a source position and a witness. See
// docs/ANALYSIS.md for the catalogue of codes.
type Diagnostic = analysis.Diagnostic

// AnalysisOptions configures Analyze: an optional object base for the
// vocabulary-aware passes and the V0106 depth threshold.
type AnalysisOptions = analysis.Options

// Pos is a file:line:col source position, threaded by the parser into
// rules and diagnostics.
type Pos = term.Pos

// Severity levels of a Diagnostic. Error-severity diagnostics are exactly
// the conditions under which Apply rejects the program.
const (
	SeverityError   = analysis.Error
	SeverityWarning = analysis.Warning
	SeverityInfo    = analysis.Info
)

// Analyze runs every static-analysis pass over a parsed program and
// returns the diagnostics in source order. Unlike Check it never fails —
// a broken program yields error-severity diagnostics — and it reports all
// defects in one run, plus lint findings Check does not perform.
func Analyze(p *Program, opts AnalysisOptions) []Diagnostic { return analysis.Program(p, opts) }

// AnalyzeSource parses and analyzes program text in one step; a syntax
// error becomes a single V0007 diagnostic and a nil program.
func AnalyzeSource(src, name string, opts AnalysisOptions) ([]Diagnostic, *Program) {
	return analysis.Source(src, name, opts)
}

// HasErrors reports whether any diagnostic has error severity.
func HasErrors(ds []Diagnostic) bool { return analysis.HasErrors(ds) }

// AnalysisFacts is the machine-readable result of deep analysis: inferred
// class/sort sets per variable, the planner's join order with cardinality
// estimates, and per-rule/per-stratum cost rollups. It round-trips through
// JSON and is served by POST /v1/check?deep=1.
type AnalysisFacts = analysis.Facts

// AnalyzeDeep runs the full pipeline of Analyze plus the semantic tier:
// class/sort inference, the cost model and the boundedness analysis
// (codes V0301-V0305). The deep tier only adds warnings and infos — the
// accept/reject line of HasErrors does not move.
func AnalyzeDeep(p *Program, opts AnalysisOptions) ([]Diagnostic, *AnalysisFacts) {
	return analysis.Deep(p, opts)
}

// AnalyzeDeepSource parses and deep-analyzes program text; a syntax error
// becomes a single V0007 diagnostic with nil facts and program.
func AnalyzeDeepSource(src, name string, opts AnalysisOptions) ([]Diagnostic, *AnalysisFacts, *Program) {
	return analysis.DeepSource(src, name, opts)
}

// Query evaluates a conjunction of body literals (concrete syntax, e.g.
// "mod(E).sal -> S, S > 4500") against a base and returns the distinct
// bindings, sorted.
func Query(base *ObjectBase, query string) ([]Binding, error) { return core.Query(base, query) }

// FormatObjectBase renders a base in canonical concrete syntax, one fact
// per line, sorted, omitting derivable exists facts.
func FormatObjectBase(b *ObjectBase) string { return parser.FormatFacts(b, false) }

// FormatProgram renders a program in canonical concrete syntax.
func FormatProgram(p *Program) string { return parser.FormatProgram(p) }

// ComputeDiff returns the fact-level difference between two bases.
func ComputeDiff(from, to *ObjectBase) Diff { return objectbase.Compute(from, to) }

// DerivedProgram is a set of derived (query-only) rules — the Section 6
// future-work extension: rules whose heads are version-terms, evaluated on
// demand into a virtual extension of the base without ever updating it.
type DerivedProgram = term.DerivedProgram

// ParseDerived parses a derived-rule program, e.g.
//
//	senior: E.rank -> senior <- E.isa -> empl, E.sal -> S, S > 4000.
func ParseDerived(src string) (*DerivedProgram, error) { return parser.Derived(src, "derived") }

// Derive evaluates derived rules over a base (stratified, bottom-up) and
// returns a copy of the base extended with every derivable method
// application. The input base is not modified.
func Derive(base *ObjectBase, p *DerivedProgram) (*ObjectBase, error) {
	return derived.Run(base, p, derived.Options{})
}

// DeriveQuery derives and queries in one step.
func DeriveQuery(base *ObjectBase, p *DerivedProgram, query string) ([]Binding, error) {
	lits, err := parser.Query(query, "query")
	if err != nil {
		return nil, err
	}
	return derived.Query(base, p, lits, derived.Options{})
}

// HistoryStep is one stage of an object's update process (see History).
type HistoryStep = eval.HistoryStep

// History reconstructs the update history of object o from a fixpoint base
// (Result.Result): its versions in temporal order with per-step diffs —
// the temporal reading of VIDs from Section 2.2 of the paper.
func History(result *ObjectBase, o OID) []HistoryStep { return eval.History(result, o) }

// Schema is a set of class signatures (class.method -> type facts) for
// the optional typing layer of Section 2.4's schema-evolution connection.
type Schema = schema.Schema

// SchemaViolation is one schema check failure.
type SchemaViolation = schema.Violation

// ParseSchema parses class signatures, e.g. "empl.sal -> num." —
// result types are num, sym, str, any, or a class name.
func ParseSchema(src string) (*Schema, error) { return schema.Parse(src, "schema") }

// CheckSchema validates every classed object of the base against the
// schema (open-schema checking; use the schema package directly for the
// closed variant).
func CheckSchema(s *Schema, base *ObjectBase) []SchemaViolation {
	return s.Check(base, schema.Options{})
}

// Repository is an object base on disk under journal control: every
// applied program is logged with its diff, and any past state can be
// reconstructed (long-term evolution versioning, complementary to the
// per-update versions — see Section 1 of the paper).
type Repository = repository.Repository

// RepositoryEntry is one journal record of a Repository.
type RepositoryEntry = repository.Entry

// Constraint is an integrity constraint in denial form: a conjunction of
// literals that must have no answers in a consistent base. Install with
// Repository.SetConstraints; violating updates are rejected uncommitted.
type Constraint = term.Constraint

// ConstraintViolationError reports an update a repository refused to
// commit.
type ConstraintViolationError = repository.ConstraintViolationError

// ParseConstraints parses integrity constraints, one denial per clause:
//
//	nonneg: E.isa -> empl, E.sal -> S, S < 0.
func ParseConstraints(src string) ([]Constraint, error) {
	return parser.Constraints(src, "constraints")
}

// InitRepository creates a journaled repository at dir holding initial.
func InitRepository(dir string, initial *ObjectBase) (*Repository, error) {
	return repository.Init(dir, initial)
}

// OpenRepository opens an existing repository directory.
func OpenRepository(dir string) (*Repository, error) { return repository.Open(dir) }
