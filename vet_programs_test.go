package verlog_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"verlog"
)

// TestShippedProgramsVetClean runs the deep analyzer over every program
// the repository ships — the examples' .vlg files and the program
// section of every golden case, including the paper's Figure programs —
// and requires them to analyze clean: no errors, and no warnings except
// where a case exists to demonstrate the warned-about defect. CI runs
// this as its own step, so a program added with a lint finding fails
// loudly rather than rotting in testdata.
func TestShippedProgramsVetClean(t *testing.T) {
	// expectWarnings lists cases whose program intentionally exhibits a
	// diagnosed defect, mapped to the codes they are allowed to raise.
	expectWarnings := map[string][]string{
		// The case demonstrates a runtime type error (arithmetic on a
		// symbol); the sort-clash analysis catches it statically.
		"23-type-error.txt": {"V0302"},
	}

	check := func(t *testing.T, name, progSrc string, opts verlog.AnalysisOptions) {
		t.Helper()
		ds, facts, p := verlog.AnalyzeDeepSource(progSrc, name, opts)
		if p == nil {
			t.Fatalf("%s does not parse: %v", name, ds)
		}
		if facts == nil || len(facts.Rules) != len(p.Rules) {
			t.Errorf("%s: deep analysis returned no facts", name)
		}
		allowed := map[string]bool{}
		for _, code := range expectWarnings[filepath.Base(name)] {
			allowed[code] = true
		}
		for _, d := range ds {
			if d.Severity == verlog.SeverityError {
				t.Errorf("%s: %s", name, d)
			}
			if d.Severity == verlog.SeverityWarning && !allowed[d.Code] {
				t.Errorf("%s: shipped program has a warning: %s", name, d)
			}
		}
	}

	t.Run("examples", func(t *testing.T) {
		progs, err := filepath.Glob("examples/*/update.vlg")
		if err != nil || len(progs) == 0 {
			t.Fatalf("no example programs found (%v)", err)
		}
		for _, prog := range progs {
			src, err := os.ReadFile(prog)
			if err != nil {
				t.Fatal(err)
			}
			var opts verlog.AnalysisOptions
			basePath := filepath.Join(filepath.Dir(prog), "base.vlg")
			if baseSrc, err := os.ReadFile(basePath); err == nil {
				ob, err := verlog.ParseObjectBaseFile(string(baseSrc), basePath)
				if err != nil {
					t.Fatalf("%s: %v", basePath, err)
				}
				opts.Base = ob
			}
			check(t, prog, string(src), opts)
		}
	})

	t.Run("golden", func(t *testing.T) {
		files, err := filepath.Glob("testdata/golden/*.txt")
		if err != nil || len(files) == 0 {
			t.Fatalf("no golden cases found (%v)", err)
		}
		for _, file := range files {
			if strings.Contains(file, "-rejected") {
				continue // exists to document a rejection
			}
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			sections := splitSections(string(raw))
			progSrc, ok := sections["program"]
			if !ok {
				continue
			}
			var opts verlog.AnalysisOptions
			if baseSrc, ok := sections["base"]; ok {
				ob, err := verlog.ParseObjectBaseFile(baseSrc, file+":base")
				if err != nil {
					t.Fatalf("%s base: %v", file, err)
				}
				opts.Base = ob
			}
			check(t, file, progSrc, opts)
		}
	})
}
