GO ?= go

.PHONY: all build test vet race check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The gate: everything a change must pass before it lands.
check: build vet race

# Smoke check: every benchmark runs once, so a broken benchmark can't rot
# unnoticed. Real measurements want -benchtime to be raised.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...
