GO ?= go

.PHONY: all build test vet race check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The gate: everything a change must pass before it lands.
check: build vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./internal/bench/

clean:
	$(GO) clean ./...
