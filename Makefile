GO ?= go

# Pinned linter versions. `$(GO) run pkg@version` resolves, caches and
# runs the exact same binary everywhere — no pre-installed tools, no
# `@latest` drift between CI and a laptop, nothing added to go.mod.
# Bump deliberately, in this one place.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build test vet lint verlog-lint staticcheck govulncheck race check bench soak clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond go vet. verlog-lint is the repo's own
# invariant checker (stdlib-only, always runs). staticcheck and
# govulncheck run at the pinned versions above through `go run`, the
# identical command locally and in CI; the probe only skips them when
# the pinned module itself cannot be resolved (hermetic sandboxes with
# no module cache and no network) — never because a binary is missing
# from PATH.
lint: vet verlog-lint staticcheck govulncheck

# The engine's own analyzers: frozen-base mutation, diskMu->commitMu
# lock order, bounded tenant metric labels, no wall-clock reads under
# commitMu. See docs/ANALYSIS.md and internal/lint.
verlog-lint:
	$(GO) run ./cmd/verlog-lint .

staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "lint: staticcheck@$(STATICCHECK_VERSION) unresolvable (offline, empty module cache); skipping"; \
	fi

govulncheck:
	@if $(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...; \
	else \
		echo "lint: govulncheck@$(GOVULNCHECK_VERSION) unresolvable (offline, empty module cache); skipping"; \
	fi

race:
	$(GO) test -race ./...

# The gate: everything a change must pass before it lands.
check: build vet race

# Two-process replication soak: builds verlog-server, runs a real
# primary/follower pair over TCP with enterprise (Figure 2) traffic,
# kill -9s the primary (asserting /v1/readyz flips 200 -> 503 -> 200
# across the failover), promotes the follower, and verifies every acked
# apply survived exactly once. The final `verlog status` fleet table is
# written to soak-fleet-status.txt (CI uploads it as an artifact). Gated
# behind VERLOG_SOAK so plain `go test ./...` stays hermetic.
soak:
	VERLOG_SOAK=1 VERLOG_SOAK_STATUS=$(CURDIR)/soak-fleet-status.txt \
		$(GO) test -race -count=1 -v -run TestSoakTwoProcessFailover ./internal/replication/

# Smoke check: every benchmark runs once with allocation stats, so a
# broken benchmark can't rot unnoticed. The raw output is also converted
# to machine-readable BENCH_10.json (including the derived E11
# overhead_x metric) for CI to archive — the same file
# TestBenchRegressionGuard reads as its 2× reference — and the
# multi-tenant residency experiment (E19: 1000 tenants under a 64-tenant
# cap) runs end-to-end, archiving its table as BENCH_7.json. Real
# measurements want -benchtime to be raised.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' ./... > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	@cat bench.out
	# Refine the headline benches with a steady-state pass: the 1x sweep
	# measures cold single shots (index builds, first-touch page faults);
	# the interpreter-gap trajectory wants warm numbers. The converter
	# keeps the last result per name, so these overwrite the smoke rows.
	$(GO) test -bench 'E1SalaryRaise|E2Enterprise|E11VsDirect' -benchmem -benchtime 5x -run '^$$' . >> bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/verlog-bench -gobench-json bench.out > BENCH_10.json
	@rm -f bench.out
	$(GO) run ./cmd/verlog-bench -run E19 -table-json BENCH_7.json

clean:
	$(GO) clean ./...
