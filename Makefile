GO ?= go

.PHONY: all build test vet lint race check bench soak clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond go vet. staticcheck and govulncheck are optional
# locally (skipped with a notice when not installed — this repo adds no
# network dependencies); CI installs both and runs this same target.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

race:
	$(GO) test -race ./...

# The gate: everything a change must pass before it lands.
check: build vet race

# Two-process replication soak: builds verlog-server, runs a real
# primary/follower pair over TCP with enterprise (Figure 2) traffic,
# kill -9s the primary, promotes the follower, and verifies every acked
# apply survived exactly once. Gated behind VERLOG_SOAK so plain
# `go test ./...` stays hermetic.
soak:
	VERLOG_SOAK=1 $(GO) test -race -count=1 -v -run TestSoakTwoProcessFailover ./internal/replication/

# Smoke check: every benchmark runs once with allocation stats, so a
# broken benchmark can't rot unnoticed. The raw output is also converted
# to machine-readable BENCH_5.json for CI to archive, and the
# multi-tenant residency experiment (E19: 1000 tenants under a 64-tenant
# cap) runs end-to-end, archiving its table as BENCH_7.json. Real
# measurements want -benchtime to be raised.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' ./... > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	@cat bench.out
	$(GO) run ./cmd/verlog-bench -gobench-json bench.out > BENCH_5.json
	@rm -f bench.out
	$(GO) run ./cmd/verlog-bench -run E19 -table-json BENCH_7.json

clean:
	$(GO) clean ./...
