GO ?= go

.PHONY: all build test vet lint race check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond go vet. staticcheck and govulncheck are optional
# locally (skipped with a notice when not installed — this repo adds no
# network dependencies); CI installs both and runs this same target.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

race:
	$(GO) test -race ./...

# The gate: everything a change must pass before it lands.
check: build vet race

# Smoke check: every benchmark runs once, so a broken benchmark can't rot
# unnoticed. Real measurements want -benchtime to be raised.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...
