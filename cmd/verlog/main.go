// Command verlog is the command-line interface to the verlog engine: it
// checks and runs update-programs against object bases, queries bases,
// diffs them, formats sources, and manages journaled repositories.
//
// Usage:
//
//	verlog run    -ob BASE -prog PROG [-o OUT] [-result OUT] [-trace] [-naive]
//	verlog trace  [-ob BASE] [-json] [-chrome FILE] [-top N] PROG
//	verlog check  -prog PROG
//	verlog vet    [-json] [-ob BASE] [-max-depth N] FILES...
//	verlog strata -prog PROG
//	verlog query  -ob BASE 'QUERY'
//	verlog diff   -from BASE1 -to BASE2
//	verlog fmt    (-prog PROG | -ob BASE)
//	verlog repo   init  -dir DIR -ob BASE
//	verlog repo   apply -dir DIR -prog PROG
//	verlog repo   log   -dir DIR
//	verlog repo   at    -dir DIR -state N
//	verlog repo   constrain -dir DIR -file CONSTRAINTS
//	verlog repl   [-ob BASE]
//	verlog status -endpoints URL1,URL2,...
//	verlog top    -endpoint URL [-interval 2s] [-n N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"verlog/internal/analysis"
	"verlog/internal/core"
	"verlog/internal/derived"
	"verlog/internal/eval"
	"verlog/internal/objectbase"
	"verlog/internal/obs"
	"verlog/internal/parser"
	"verlog/internal/repl"
	"verlog/internal/repository"
	"verlog/internal/safety"
	"verlog/internal/schema"
	"verlog/internal/storage"
	"verlog/internal/strata"
	"verlog/internal/term"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "vet":
		err = cmdVet(os.Args[2:])
	case "strata":
		err = cmdStrata(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "repo":
		err = cmdRepo(os.Args[2:])
	case "repl":
		err = cmdRepl(os.Args[2:])
	case "schema":
		err = cmdSchema(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "explain-plan":
		err = cmdExplainPlan(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "verlog: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "verlog:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `verlog — a rule-based update language for objects (VLDB 1992)

commands:
  run     apply an update-program to an object base
  trace   run a program and print its evaluation span tree + rule hot list
  check   check a program (safety + stratifiability)
  vet     static analysis with positioned, coded diagnostics
  strata  print a program's stratification and constraints
  query   evaluate a query against an object base
  diff    compare two object bases
  fmt     reformat a program or object base canonically
  repo    manage a journaled object-base repository
  repl    interactive session (facts, staged rules, queries)
  schema  check an object base against class signatures
  stats   summarize an object base (facts, versions, methods)
  plan    show the join order the planner picks per rule
  explain-plan  per-rule cost tables from the deep analysis tier
  convert convert an object base between text and binary snapshots
  status  one-line-per-node fleet table from each server's /v1/status
  top     live console over one server: rates, hot rules, slow requests

run 'verlog <command> -h' for flags.
`)
}

func loadBase(path string) (*objectbase.Base, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parser.ObjectBase(string(src), path)
}

func loadProgram(path string) (*term.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parser.Program(string(src), path)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	obPath := fs.String("ob", "", "object base file (required)")
	progPath := fs.String("prog", "", "update-program file (required)")
	outPath := fs.String("o", "", "write the updated object base here (default stdout)")
	resultPath := fs.String("result", "", "also write the fixpoint result(P) with all versions")
	trace := fs.Bool("trace", false, "print every fired update")
	naive := fs.Bool("naive", false, "use naive instead of semi-naive iteration")
	stats := fs.Bool("stats", false, "print evaluation statistics")
	history := fs.String("history", "", "print the version history of the named object")
	explain := fs.String("explain", "", "explain where the given fact (concrete syntax) came from")
	fs.Parse(args)
	if *obPath == "" || *progPath == "" {
		return fmt.Errorf("run: -ob and -prog are required")
	}
	ob, err := loadBase(*obPath)
	if err != nil {
		return err
	}
	p, err := loadProgram(*progPath)
	if err != nil {
		return err
	}
	var opts []core.Option
	if *trace || *explain != "" {
		opts = append(opts, core.WithTrace())
	}
	if *naive {
		opts = append(opts, core.WithStrategy(eval.Naive))
	}
	res, err := core.New(opts...).Apply(ob, p)
	if err != nil {
		return err
	}
	if *trace {
		for _, ev := range res.Trace {
			fmt.Fprintln(os.Stderr, ev)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "strata: %d, fired updates: %d, iterations per stratum: %v\n",
			res.Assignment.NumStrata(), res.Fired, res.Iterations)
		fmt.Fprintf(os.Stderr, "result(P): %d facts, ob': %d facts\n", res.Result.Size(), res.Final.Size())
	}
	if *resultPath != "" {
		if err := os.WriteFile(*resultPath, []byte(parser.FormatFacts(res.Result, true)), 0o644); err != nil {
			return err
		}
	}
	if *explain != "" {
		facts, err := parser.Facts(*explain, "explain")
		if err != nil {
			return fmt.Errorf("run: -explain: %w", err)
		}
		for _, f := range facts {
			fmt.Fprintln(os.Stderr, res.Explain(f))
		}
	}
	if *history != "" {
		steps := eval.History(res.Result, term.Sym(*history))
		if len(steps) == 0 {
			fmt.Fprintf(os.Stderr, "no versions of %s\n", *history)
		}
		for _, s := range steps {
			fmt.Fprintln(os.Stderr, " ", s)
		}
	}
	out := parser.FormatFacts(res.Final, false)
	if *outPath == "" {
		fmt.Print(out)
		return nil
	}
	return os.WriteFile(*outPath, []byte(out), 0o644)
}

// cmdTrace applies a program with full evaluation tracing and prints the
// span tree (parse, safety, stratification, every stratum's iterations
// down to per-rule matching, the copy phase) plus the per-rule hot list —
// the same tree POST /v1/apply?trace=1 returns.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	obPath := fs.String("ob", "", "object base file (default: base.vlg next to PROG if present, else empty)")
	asJSON := fs.Bool("json", false, "emit the trace as JSON instead of the tree")
	chromePath := fs.String("chrome", "", "also write Chrome trace_event JSON here (chrome://tracing, Perfetto)")
	top := fs.Int("top", 0, "limit the rule hot list to the N hottest rules")
	naive := fs.Bool("naive", false, "use naive instead of semi-naive iteration")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("trace: usage: verlog trace [-ob BASE] [-json] [-chrome FILE] [-top N] PROG")
	}
	progPath := fs.Arg(0)

	// Default base: a sibling base.vlg, the conventional layout of
	// examples/ — otherwise start from an empty object base.
	ob := objectbase.New()
	path := *obPath
	if path == "" {
		sibling := filepath.Join(filepath.Dir(progPath), "base.vlg")
		if _, err := os.Stat(sibling); err == nil {
			path = sibling
		}
	}
	if path != "" {
		var err error
		if ob, err = loadBase(path); err != nil {
			return err
		}
	}

	tr := obs.NewTrace("verlog trace " + filepath.Base(progPath))
	parseSpan := tr.Root.StartChild("parse")
	p, err := loadProgram(progPath)
	parseSpan.End()
	if err != nil {
		return err
	}
	parseSpan.SetInt("rules", int64(len(p.Rules)))

	opts := []core.Option{core.WithSpan(tr.Root), core.WithTrace()}
	if *naive {
		opts = append(opts, core.WithStrategy(eval.Naive))
	}
	res, err := core.New(opts...).Apply(ob, p)
	tr.Finish()
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tr); err != nil {
			return err
		}
	} else {
		tr.WriteTree(os.Stdout)
		stats := res.RuleStats
		if *top > 0 && *top < len(stats) {
			stats = stats[:*top]
		}
		fmt.Printf("\nhottest rules (%d fired in total):\n", res.Fired)
		for _, rs := range stats {
			fmt.Printf("  %-16s stratum %d  fired %-4d emitted %-4d matched %-4d iterations %-3d %dus\n",
				rs.Rule, rs.Stratum, rs.Fired, rs.Emitted, rs.Matched, rs.Iterations, rs.TimeUS)
		}
	}

	if *chromePath != "" {
		f, err := os.Create(*chromePath)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *chromePath)
	}
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	progPath := fs.String("prog", "", "update-program file (required)")
	fs.Parse(args)
	if *progPath == "" {
		return fmt.Errorf("check: -prog is required")
	}
	p, err := loadProgram(*progPath)
	if err != nil {
		return err
	}
	if err := safety.Program(p); err != nil {
		return err
	}
	a, err := strata.Stratify(p)
	if err != nil {
		return err
	}
	fmt.Printf("%d rules, safe, stratifiable into %d strata: %s\n",
		len(p.Rules), a.NumStrata(), a.Format(p.RuleLabels()))
	return nil
}

// cmdVet runs the multi-pass static analyzer over one or more program
// files and prints every diagnostic (file:line:col, stable code, message).
// Exit status is 1 when any diagnostic has error severity; warnings and
// infos alone exit 0 (use -strict to fail on warnings too).
func cmdVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	obPath := fs.String("ob", "", "object base supplying the method vocabulary (sharper lint passes)")
	maxDepth := fs.Int("max-depth", 0, "version nesting depth above which V0106 fires (default 4)")
	strict := fs.Bool("strict", false, "treat warnings as failures")
	deep := fs.Bool("deep", false, "run the semantic tier too (class/sort inference, cost model, boundedness: V03xx)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("vet: usage: verlog vet [-json] [-deep] [-ob BASE] [-max-depth N] FILES...")
	}
	opts := analysis.Options{MaxDepth: *maxDepth}
	if *obPath != "" {
		ob, err := loadBase(*obPath)
		if err != nil {
			return err
		}
		opts.Base = ob
	}
	type fileReport struct {
		File        string                `json:"file"`
		Diagnostics []analysis.Diagnostic `json:"diagnostics"`
		Facts       *analysis.Facts       `json:"facts,omitempty"`
	}
	var all []analysis.Diagnostic
	var reports []fileReport
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var ds []analysis.Diagnostic
		var facts *analysis.Facts
		if *deep {
			ds, facts, _ = analysis.DeepSource(string(src), path, opts)
		} else {
			ds, _ = analysis.Source(string(src), path, opts)
		}
		if ds == nil {
			ds = []analysis.Diagnostic{}
		}
		all = append(all, ds...)
		reports = append(reports, fileReport{File: path, Diagnostics: ds, Facts: facts})
	}
	var nErr, nWarn int
	for _, d := range all {
		switch d.Severity {
		case analysis.Error:
			nErr++
		case analysis.Warning:
			nWarn++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		if *deep {
			// With -deep the JSON shape is per-file: diagnostics plus the
			// machine-readable Facts. Without -deep the flat diagnostics
			// array is preserved for existing consumers.
			if err := enc.Encode(reports); err != nil {
				return err
			}
		} else {
			if all == nil {
				all = []analysis.Diagnostic{}
			}
			if err := enc.Encode(all); err != nil {
				return err
			}
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if nErr > 0 || (*strict && nWarn > 0) {
		return fmt.Errorf("vet: %d error(s), %d warning(s)", nErr, nWarn)
	}
	return nil
}

func cmdStrata(args []string) error {
	fs := flag.NewFlagSet("strata", flag.ExitOnError)
	progPath := fs.String("prog", "", "update-program file (required)")
	edges := fs.Bool("edges", false, "also print the constraint edges")
	fs.Parse(args)
	if *progPath == "" {
		return fmt.Errorf("strata: -prog is required")
	}
	p, err := loadProgram(*progPath)
	if err != nil {
		return err
	}
	a, err := strata.Stratify(p)
	if err != nil {
		return err
	}
	labels := p.RuleLabels()
	for i, s := range a.Strata {
		names := make([]string, len(s))
		for j, r := range s {
			names[j] = labels[r]
		}
		fmt.Printf("stratum %d: {%s}\n", i+1, strings.Join(names, ", "))
	}
	if *edges {
		es := append([]strata.Edge(nil), a.Edges...)
		sort.Slice(es, func(i, j int) bool {
			if es[i].To != es[j].To {
				return es[i].To < es[j].To
			}
			return es[i].From < es[j].From
		})
		for _, e := range es {
			rel := "<="
			if e.Strict {
				rel = "< "
			}
			fmt.Printf("  (%c) %s %s %s\n", e.Cond, labels[e.From], rel, labels[e.To])
		}
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	obPath := fs.String("ob", "", "object base file (required)")
	derivedPath := fs.String("derived", "", "derived-rule file to evaluate before querying")
	fs.Parse(args)
	if *obPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("query: usage: verlog query -ob BASE [-derived RULES] 'QUERY'")
	}
	ob, err := loadBase(*obPath)
	if err != nil {
		return err
	}
	if *derivedPath != "" {
		src, err := os.ReadFile(*derivedPath)
		if err != nil {
			return err
		}
		dp, err := parser.Derived(string(src), *derivedPath)
		if err != nil {
			return err
		}
		if ob, err = derived.Run(ob, dp, derived.Options{}); err != nil {
			return err
		}
	}
	bindings, err := core.Query(ob, fs.Arg(0))
	if err != nil {
		return err
	}
	for _, b := range bindings {
		fmt.Println(b)
	}
	fmt.Fprintf(os.Stderr, "%d answers\n", len(bindings))
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fromPath := fs.String("from", "", "old object base (required)")
	toPath := fs.String("to", "", "new object base (required)")
	fs.Parse(args)
	if *fromPath == "" || *toPath == "" {
		return fmt.Errorf("diff: -from and -to are required")
	}
	from, err := loadBase(*fromPath)
	if err != nil {
		return err
	}
	to, err := loadBase(*toPath)
	if err != nil {
		return err
	}
	d := objectbase.Compute(from, to)
	for _, f := range d.Removed {
		fmt.Printf("- %s.\n", f)
	}
	for _, f := range d.Added {
		fmt.Printf("+ %s.\n", f)
	}
	if d.Empty() {
		fmt.Fprintln(os.Stderr, "bases are identical")
	}
	return nil
}

func cmdFmt(args []string) error {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	progPath := fs.String("prog", "", "update-program file")
	obPath := fs.String("ob", "", "object base file")
	fs.Parse(args)
	switch {
	case *progPath != "":
		p, err := loadProgram(*progPath)
		if err != nil {
			return err
		}
		fmt.Print(parser.FormatProgram(p))
		return nil
	case *obPath != "":
		ob, err := loadBase(*obPath)
		if err != nil {
			return err
		}
		fmt.Print(parser.FormatFacts(ob, false))
		return nil
	default:
		return fmt.Errorf("fmt: one of -prog or -ob is required")
	}
}

func cmdRepl(args []string) error {
	fs := flag.NewFlagSet("repl", flag.ExitOnError)
	obPath := fs.String("ob", "", "load this object base first")
	fs.Parse(args)
	session := repl.New(os.Stdout)
	if *obPath != "" {
		ob, err := loadBase(*obPath)
		if err != nil {
			return err
		}
		session.SetBase(ob)
		fmt.Printf("loaded %s (%d facts); .help for commands\n", *obPath, ob.Size())
	} else {
		fmt.Println("empty base; .help for commands")
	}
	return session.Run(os.Stdin, true)
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	inPath := fs.String("in", "", "input object base, text or binary (required)")
	outPath := fs.String("o", "", "output file (required); format chosen by -to")
	to := fs.String("to", "bin", "output format: bin (gob snapshot) or text")
	fs.Parse(args)
	if *inPath == "" || *outPath == "" {
		return fmt.Errorf("convert: -in and -o are required")
	}
	// Sniff the input: binary snapshots never start with printable fact
	// syntax, so try binary first and fall back to text.
	var base *objectbase.Base
	if f, err := os.Open(*inPath); err == nil {
		base, err = storage.LoadBinary(f)
		f.Close()
		if err != nil {
			base = nil
		}
	}
	if base == nil {
		var err error
		base, err = loadBase(*inPath)
		if err != nil {
			return err
		}
	}
	out, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	switch *to {
	case "bin":
		err = storage.SaveBinary(out, base)
	case "text":
		err = storage.SaveText(out, base)
	default:
		err = fmt.Errorf("convert: unknown format %q (bin or text)", *to)
	}
	if err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d facts)\n", *outPath, base.Size())
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	obPath := fs.String("ob", "", "object base file (required; supplies the statistics)")
	progPath := fs.String("prog", "", "update-program file (required)")
	static := fs.Bool("static", false, "show the source-order planner instead")
	fs.Parse(args)
	if *obPath == "" || *progPath == "" {
		return fmt.Errorf("plan: -ob and -prog are required")
	}
	ob, err := loadBase(*obPath)
	if err != nil {
		return err
	}
	p, err := loadProgram(*progPath)
	if err != nil {
		return err
	}
	for _, rp := range eval.ExplainPlans(ob, p, *static) {
		fmt.Print(rp)
	}
	return nil
}

func cmdExplainPlan(args []string) error {
	fs := flag.NewFlagSet("explain-plan", flag.ExitOnError)
	obPath := fs.String("ob", "", "object base supplying cardinality statistics (default: static estimates)")
	asJSON := fs.Bool("json", false, "emit the analysis Facts as JSON instead of tables")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("explain-plan: usage: verlog explain-plan [-ob BASE] [-json] FILE")
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	opts := analysis.Options{}
	if *obPath != "" {
		ob, err := loadBase(*obPath)
		if err != nil {
			return err
		}
		opts.Base = ob
	}
	ds, facts, _ := analysis.DeepSource(string(src), path, opts)
	if analysis.HasErrors(ds) {
		for _, d := range ds {
			fmt.Fprintln(os.Stderr, d)
		}
		return fmt.Errorf("explain-plan: %s does not analyze clean", path)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		return enc.Encode(facts)
	}
	if !facts.Base.Supplied {
		fmt.Println("(no -ob: static estimates)")
	} else {
		fmt.Printf("base: %d objects, %d versions, %d facts\n",
			facts.Base.Objects, facts.Base.Versions, facts.Base.Facts)
	}
	for _, rf := range facts.Rules {
		fmt.Printf("\nrule %s", rf.Rule)
		if rf.Stratum >= 0 {
			fmt.Printf("  [stratum %d]", rf.Stratum+1)
		}
		if rf.Recursive {
			fmt.Print("  [recursive]")
		}
		fmt.Printf("\n  cost %.0f  fanout %.0f\n", rf.Cost, rf.Fanout)
		for i, l := range rf.Literals {
			delta := " "
			if l.Delta {
				delta = "Δ"
			}
			access := l.Access
			if access == "" {
				access = "-"
			}
			est := fmt.Sprintf("est %d", l.EstRows)
			if l.DeltaRows > 0 {
				est += fmt.Sprintf(" (Δ %d)", l.DeltaRows)
			}
			fmt.Printf("  %2d %s %-9s %-12s %-16s %s\n", i+1, delta, l.Kind, access, est, l.Literal)
		}
		for _, v := range rf.Vars {
			line := fmt.Sprintf("  var %s: %s", v.Var, strings.Join(v.Sorts, "|"))
			if len(v.Classes) > 0 {
				line += " in {" + strings.Join(v.Classes, ", ") + "}"
			}
			if v.Empty {
				line += " (never matches)"
			}
			fmt.Println(line)
		}
	}
	if len(facts.Strata) > 0 {
		fmt.Println("\nstrata:")
		for _, sf := range facts.Strata {
			rec := ""
			if sf.Recursive {
				rec = "  recursive"
			}
			fmt.Printf("  %d: {%s} cost %.0f%s\n", sf.Stratum+1, strings.Join(sf.Rules, ", "), sf.Cost, rec)
		}
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	obPath := fs.String("ob", "", "object base file (required)")
	fs.Parse(args)
	if *obPath == "" {
		return fmt.Errorf("stats: -ob is required")
	}
	ob, err := loadBase(*obPath)
	if err != nil {
		return err
	}
	fmt.Print(objectbase.CollectStats(ob))
	return nil
}

func cmdSchema(args []string) error {
	fs := flag.NewFlagSet("schema", flag.ExitOnError)
	obPath := fs.String("ob", "", "object base file (required)")
	schemaPath := fs.String("schema", "", "schema file with class.method -> type facts (required)")
	progPath := fs.String("prog", "", "also apply this program and report the schema evolution")
	strict := fs.Bool("strict", false, "flag undeclared methods on classed objects")
	fs.Parse(args)
	if *obPath == "" || *schemaPath == "" {
		return fmt.Errorf("schema: -ob and -schema are required")
	}
	ob, err := loadBase(*obPath)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*schemaPath)
	if err != nil {
		return err
	}
	sch, err := schema.Parse(string(src), *schemaPath)
	if err != nil {
		return err
	}
	vs := sch.Check(ob, schema.Options{RequireDeclared: *strict})
	for _, v := range vs {
		fmt.Println(v)
	}
	if len(vs) == 0 {
		fmt.Printf("ok: base conforms to %d class(es)\n", len(sch.Classes()))
	}
	if *progPath != "" {
		p, err := loadProgram(*progPath)
		if err != nil {
			return err
		}
		res, err := core.New().Apply(ob, p)
		if err != nil {
			return err
		}
		after := sch.Check(res.Final, schema.Options{RequireDeclared: *strict})
		fmt.Printf("after program: %d violation(s)\n", len(after))
		for _, v := range after {
			fmt.Println(" ", v)
		}
		for _, ev := range sch.EvolutionReport(ob, res.Final) {
			fmt.Printf("class %s: gained %v, lost %v\n", ev.Class, ev.Gained, ev.Lost)
		}
	}
	if len(vs) > 0 {
		return fmt.Errorf("schema: %d violation(s)", len(vs))
	}
	return nil
}

func cmdRepo(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("repo: usage: verlog repo (init|apply|log|at) ...")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("repo "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "repository directory (required)")
	obPath := fs.String("ob", "", "initial object base (init)")
	progPath := fs.String("prog", "", "update-program (apply)")
	state := fs.Int("state", -1, "state number (at)")
	constraintsPath := fs.String("file", "", "constraints file (constrain)")
	fs.Parse(rest)
	if *dir == "" {
		return fmt.Errorf("repo %s: -dir is required", sub)
	}
	switch sub {
	case "init":
		if *obPath == "" {
			return fmt.Errorf("repo init: -ob is required")
		}
		ob, err := loadBase(*obPath)
		if err != nil {
			return err
		}
		if _, err := repository.Init(*dir, ob); err != nil {
			return err
		}
		fmt.Printf("initialized repository in %s (%d facts)\n", *dir, ob.Size())
		return nil
	case "apply":
		if *progPath == "" {
			return fmt.Errorf("repo apply: -prog is required")
		}
		r, err := repository.Open(*dir)
		if err != nil {
			return err
		}
		p, err := loadProgram(*progPath)
		if err != nil {
			return err
		}
		res, err := r.Apply(p)
		if err != nil {
			return err
		}
		n, _ := r.Len()
		fmt.Printf("applied as state %d: %d updates fired, ob' has %d facts\n",
			n, res.Fired, res.Final.Size())
		return nil
	case "log":
		r, err := repository.Open(*dir)
		if err != nil {
			return err
		}
		entries, err := r.Entries()
		if err != nil {
			return err
		}
		for _, e := range entries {
			first := strings.SplitN(strings.TrimSpace(e.Program), "\n", 2)[0]
			fmt.Printf("state %d: +%d -%d facts, %d fired, %d strata | %s\n",
				e.Seq, len(e.Added), len(e.Removed), e.Fired, e.Strata, first)
		}
		return nil
	case "verify":
		r, err := repository.Open(*dir)
		if err != nil {
			return err
		}
		if err := r.Verify(); err != nil {
			return err
		}
		n, _ := r.Len()
		fmt.Printf("ok: %d journaled state(s) replay to the head\n", n)
		return nil
	case "compact":
		r, err := repository.Open(*dir)
		if err != nil {
			return err
		}
		n, _ := r.Len()
		if err := r.Compact(); err != nil {
			return err
		}
		fmt.Printf("compacted: %d journaled state(s) folded into the snapshot\n", n)
		return nil
	case "constrain":
		if *constraintsPath == "" {
			return fmt.Errorf("repo constrain: -file is required")
		}
		r, err := repository.Open(*dir)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(*constraintsPath)
		if err != nil {
			return err
		}
		if err := r.SetConstraints(string(src)); err != nil {
			return err
		}
		cs, _ := r.Constraints()
		fmt.Printf("installed %d constraint(s)\n", len(cs))
		return nil
	case "at":
		if *state < 0 {
			return fmt.Errorf("repo at: -state is required")
		}
		r, err := repository.Open(*dir)
		if err != nil {
			return err
		}
		b, err := r.At(*state)
		if err != nil {
			return err
		}
		fmt.Print(parser.FormatFacts(b, false))
		return nil
	default:
		return fmt.Errorf("repo: unknown subcommand %q", sub)
	}
}
