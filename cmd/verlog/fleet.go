package main

// The fleet-observability subcommands: `verlog status` renders the
// one-line-per-node fleet table from each endpoint's /v1/status, and
// `verlog top` is a live polling console over a single node — plain
// ANSI redraw, no external dependencies, sized for a terminal.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"verlog/client"
)

// cmdStatus implements `verlog status -endpoints a,b,c`: one status
// sweep across the fleet, one table, exit 1 when any node is down or
// not ready (so scripts can gate on it).
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	endpoints := fs.String("endpoints", "http://127.0.0.1:8487",
		"comma-separated server base URLs to sweep")
	timeout := fs.Duration("timeout", 5*time.Second, "per-sweep deadline")
	fs.Parse(args)

	eps := splitEndpoints(*endpoints)
	if len(eps) == 0 {
		return fmt.Errorf("status: -endpoints is empty")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rows := client.NewMulti(eps).FleetStatus(ctx)
	fmt.Print(client.FleetTable(rows))
	for _, row := range rows {
		if row.Err != nil || !row.Status.Ready {
			os.Exit(1)
		}
	}
	return nil
}

// cmdTop implements `verlog top -endpoint URL`: poll /v1/status and
// /v1/debug/slow on an interval and redraw. -n bounds the number of
// frames (0 = until interrupted); -n 1 prints a single frame without
// clearing the screen, which is also what the tests drive.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	endpoint := fs.String("endpoint", "http://127.0.0.1:8487", "server base URL")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	frames := fs.Int("n", 0, "stop after this many frames (0 = until interrupted)")
	rules := fs.Int("rules", 10, "hot rules to show")
	slow := fs.Int("slow", 5, "recent slow requests to show")
	fs.Parse(args)

	c := client.New(*endpoint)
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var prev *client.NodeStatus
	var prevAt time.Time
	for i := 0; *frames <= 0 || i < *frames; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(*interval):
			}
		}
		pollCtx, pollCancel := context.WithTimeout(ctx, *interval+5*time.Second)
		data, err := c.TopPoll(pollCtx)
		pollCancel()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("top: %w", err)
		}
		live := *frames != 1
		if live {
			// Home the cursor and clear: a flicker-free redraw without
			// any terminal library.
			fmt.Print("\x1b[H\x1b[2J")
		}
		fmt.Print(renderTop(data, prev, time.Since(prevAt), *rules, *slow))
		prev, prevAt = data.Status, time.Now()
	}
	return nil
}

// renderTop formats one `verlog top` frame.
func renderTop(data *client.TopData, prev *client.NodeStatus, elapsed time.Duration, nRules, nSlow int) string {
	st := data.Status
	var b strings.Builder

	ready := "ready"
	if !st.Ready {
		ready = "NOT READY (" + strings.Join(st.FailingChecks(), ",") + ")"
	}
	fmt.Fprintf(&b, "verlog %s  %s epoch=%d head=%d  up %s  %s\n",
		st.Version, st.Role, st.Epoch, st.HeadSeq, shortDuration(st.UptimeSeconds), ready)
	if r := st.Replication; r != nil && r.Role == "follower" {
		fmt.Fprintf(&b, "following %s  lag %d seqs / %.1fs  connected=%v\n",
			r.Primary, r.LagSeq, r.LagSeconds, r.Connected)
	}
	fmt.Fprintf(&b, "http  %6.1f req/s  %5.2f%% err  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		st.HTTPWindow.Rate, 100*st.HTTPWindow.ErrorRate,
		st.HTTPWindow.P50MS, st.HTTPWindow.P95MS, st.HTTPWindow.P99MS)
	fmt.Fprintf(&b, "apply %6.1f req/s  %5.2f%% err  p99 %.1fms   query %6.1f req/s  %5.2f%% err  p99 %.1fms\n",
		st.ApplyWindow.Rate, 100*st.ApplyWindow.ErrorRate, st.ApplyWindow.P99MS,
		st.QueryWindow.Rate, 100*st.QueryWindow.ErrorRate, st.QueryWindow.P99MS)
	fmt.Fprintf(&b, "tenants %d/%d resident  %d opens  %d evictions\n",
		st.Tenants.Resident, st.Tenants.MaxOpen, st.Tenants.Opens, st.Tenants.Evictions)

	if rates := client.TenantRates(prev, st, elapsed); len(rates) > 0 {
		fmt.Fprintf(&b, "\n%-24s %10s %10s\n", "TENANT", "REQ/S", "TOTAL")
		for i, tr := range rates {
			if i >= 8 {
				fmt.Fprintf(&b, "  … %d more\n", len(rates)-i)
				break
			}
			name := tr.Tenant
			if name == "" {
				name = "(default)"
			}
			fmt.Fprintf(&b, "%-24s %10.1f %10d\n", name, tr.Rate, tr.Total)
		}
	}

	if len(st.HotRules) > 0 && nRules > 0 {
		fmt.Fprintf(&b, "\n%-32s %8s %8s %8s %10s\n", "HOT RULE", "APPLIES", "FIRED", "EMITTED", "TIME(MS)")
		for i, hr := range st.HotRules {
			if i >= nRules {
				break
			}
			name := hr.Rule
			if len(name) > 32 {
				name = name[:31] + "…"
			}
			fmt.Fprintf(&b, "%-32s %8d %8d %8d %10.1f\n",
				name, hr.Applies, hr.Fired, hr.Emitted, float64(hr.TimeUS)/1000)
		}
	}

	if len(data.Slow) > 0 && nSlow > 0 {
		fmt.Fprintf(&b, "\nSLOW (>= %.0fms, %d total)\n", st.SlowThresholdMS, st.SlowTotal)
		for i, e := range data.Slow {
			if i >= nSlow {
				break
			}
			tenant := e.Tenant
			if tenant != "" {
				tenant = " t=" + tenant
			}
			fmt.Fprintf(&b, "  %7.1fms  %d %-4s %s%s\n", e.DurationMS, e.Status, e.Method, e.Path, tenant)
		}
	}
	return b.String()
}

// shortDuration renders an uptime compactly (2d3h, 4h12m, 9m3s, 42s).
func shortDuration(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case d >= 24*time.Hour:
		return fmt.Sprintf("%dd%dh", int(d.Hours())/24, int(d.Hours())%24)
	case d >= time.Hour:
		return fmt.Sprintf("%dh%dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	}
}

// splitEndpoints parses a comma-separated endpoint list, dropping empty
// segments and trailing slashes.
func splitEndpoints(s string) []string {
	var out []string
	for _, ep := range strings.Split(s, ",") {
		ep = strings.TrimRight(strings.TrimSpace(ep), "/")
		if ep != "" {
			out = append(out, ep)
		}
	}
	return out
}
