package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestCmdTrace: the tree view shows the full span hierarchy and a rule
// hot list whose per-rule fired counts sum to the printed total.
func TestCmdTrace(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", testBase)
	prog := writeFile(t, dir, "prog.vlg", testProg)

	out, err := capture(t, func() error {
		return cmdTrace([]string{"-ob", ob, prog})
	})
	if err != nil {
		t.Fatalf("cmdTrace: %v", err)
	}
	for _, want := range []string{
		"trace ", "├─ parse", "├─ safety", "├─ stratify",
		"├─ stratum 1", "iteration 1", "rule rule1", "└─ copy",
		"hottest rules",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// "hottest rules (N fired in total)" vs the sum of "fired X" columns.
	m := regexp.MustCompile(`hottest rules \((\d+) fired in total\)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no total in output:\n%s", out)
	}
	total, _ := strconv.Atoi(m[1])
	sum := 0
	for _, f := range regexp.MustCompile(`fired (\d+)`).FindAllStringSubmatch(out, -1) {
		n, _ := strconv.Atoi(f[1])
		sum += n
	}
	if total == 0 || sum != total {
		t.Errorf("per-rule fired sums to %d, header says %d:\n%s", sum, total, out)
	}
}

// TestCmdTraceDefaultBase: with no -ob, a sibling base.vlg is picked up.
func TestCmdTraceDefaultBase(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "base.vlg", testBase)
	prog := writeFile(t, dir, "prog.vlg", testProg)

	out, err := capture(t, func() error {
		return cmdTrace([]string{"-top", "2", prog})
	})
	if err != nil {
		t.Fatalf("cmdTrace: %v", err)
	}
	if !strings.Contains(out, "fired in total") {
		t.Fatalf("no hot list:\n%s", out)
	}
	// -top 2 limits the list: at most 2 rule lines after the header.
	lines := strings.Split(strings.TrimSpace(out[strings.Index(out, "hottest rules"):]), "\n")
	if len(lines) != 3 {
		t.Errorf("-top 2 printed %d hot-list lines:\n%s", len(lines)-1, out)
	}
}

// TestCmdTraceJSONAndChrome: -json emits the trace object, -chrome writes
// loadable trace_event JSON.
func TestCmdTraceJSONAndChrome(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", testBase)
	prog := writeFile(t, dir, "prog.vlg", testProg)
	chrome := filepath.Join(dir, "trace.json")

	out, err := capture(t, func() error {
		return cmdTrace([]string{"-ob", ob, "-json", "-chrome", chrome, prog})
	})
	if err != nil {
		t.Fatalf("cmdTrace: %v", err)
	}
	var tr struct {
		ID   string `json:"id"`
		Root *struct {
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal([]byte(out), &tr); err != nil {
		t.Fatalf("-json output: %v\n%s", err, out)
	}
	if len(tr.ID) != 32 || tr.Root == nil || len(tr.Root.Children) < 5 {
		t.Errorf("trace json = %s", out)
	}

	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatalf("chrome file: %v", err)
	}
	var export struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &export); err != nil || export.DisplayTimeUnit != "ms" || len(export.TraceEvents) < 5 {
		t.Errorf("chrome export = %s (%v)", data, err)
	}
}

// TestCmdTraceErrors: a defective program surfaces the error, usage is
// enforced.
func TestCmdTraceErrors(t *testing.T) {
	dir := t.TempDir()
	if err := cmdTrace([]string{}); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("no args: %v", err)
	}
	bad := writeFile(t, dir, "bad.vlg", `r1: ins[X].a -> b <- Y.c -> d.`)
	if _, err := capture(t, func() error { return cmdTrace([]string{bad}) }); err == nil {
		t.Error("unsafe program accepted")
	}
}
