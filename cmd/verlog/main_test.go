package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	return path
}

const (
	testBase = `
phil.isa -> empl / pos -> mgr / sal -> 4000.
bob.isa -> empl / boss -> phil / sal -> 4200.
`
	testProg = `
rule1: mod[E].sal -> (S, S') <- E.isa -> empl / pos -> mgr / sal -> S, S' = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S') <- E.isa -> empl / sal -> S, !E.pos -> mgr, S' = S * 1.1.
rule3: del[mod(E)].* <- mod(E).isa -> empl / boss -> B / sal -> SE, mod(B).isa -> empl / sal -> SB, SE > SB.
rule4: ins[mod(E)].isa -> hpe <- mod(E).isa -> empl / sal -> S, S > 4500, !del[mod(E)].isa -> empl.
`
)

func TestCmdRunToFile(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", testBase)
	prog := writeFile(t, dir, "prog.vlg", testProg)
	out := filepath.Join(dir, "out.vlg")
	result := filepath.Join(dir, "result.vlg")
	if err := cmdRun([]string{"-ob", ob, "-prog", prog, "-o", out, "-result", result}); err != nil {
		t.Fatalf("cmdRun: %v", err)
	}
	final, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read out: %v", err)
	}
	if !strings.Contains(string(final), "phil.sal -> 4600.") || strings.Contains(string(final), "bob") {
		t.Errorf("out.vlg:\n%s", final)
	}
	res, err := os.ReadFile(result)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	if !strings.Contains(string(res), "mod(bob).sal -> 4620.") {
		t.Errorf("result.vlg misses versions:\n%s", res)
	}
}

func TestCmdRunMissingFlags(t *testing.T) {
	if err := cmdRun([]string{}); err == nil {
		t.Errorf("missing flags accepted")
	}
}

func TestCmdCheck(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "prog.vlg", testProg)
	out, err := capture(t, func() error { return cmdCheck([]string{"-prog", prog}) })
	if err != nil {
		t.Fatalf("cmdCheck: %v", err)
	}
	if !strings.Contains(out, "3 strata") || !strings.Contains(out, "{rule1, rule2}; {rule3}; {rule4}") {
		t.Errorf("check output: %s", out)
	}
	bad := writeFile(t, dir, "bad.vlg", `r: ins[X].m -> Y <- X.t -> 1.`)
	if err := cmdCheck([]string{"-prog", bad}); err == nil {
		t.Errorf("unsafe program passed check")
	}
}

func TestCmdStrataEdges(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "prog.vlg", testProg)
	out, err := capture(t, func() error { return cmdStrata([]string{"-prog", prog, "-edges"}) })
	if err != nil {
		t.Fatalf("cmdStrata: %v", err)
	}
	for _, want := range []string{"stratum 1: {rule1, rule2}", "stratum 3: {rule4}", "(a) rule1 <  rule3", "(c) rule3 <  rule4"} {
		if !strings.Contains(out, want) {
			t.Errorf("strata output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdQuery(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", testBase)
	out, err := capture(t, func() error {
		return cmdQuery([]string{"-ob", ob, `E.sal -> S, S > 4000.`})
	})
	if err != nil {
		t.Fatalf("cmdQuery: %v", err)
	}
	if !strings.Contains(out, "E=bob, S=4200") {
		t.Errorf("query output: %s", out)
	}
}

func TestCmdQueryDerived(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", testBase)
	rules := writeFile(t, dir, "rules.vlg", `
senior: E.rank -> senior <- E.isa -> empl, E.sal -> S, S > 4000.
`)
	out, err := capture(t, func() error {
		return cmdQuery([]string{"-ob", ob, "-derived", rules, `E.rank -> R.`})
	})
	if err != nil {
		t.Fatalf("cmdQuery -derived: %v", err)
	}
	if !strings.Contains(out, "E=bob, R=senior") {
		t.Errorf("derived query output: %s", out)
	}
}

func TestCmdDiff(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.vlg", `x.m -> 1.`)
	b := writeFile(t, dir, "b.vlg", `x.m -> 2.`)
	out, err := capture(t, func() error { return cmdDiff([]string{"-from", a, "-to", b}) })
	if err != nil {
		t.Fatalf("cmdDiff: %v", err)
	}
	if !strings.Contains(out, "- x.m -> 1.") || !strings.Contains(out, "+ x.m -> 2.") {
		t.Errorf("diff output: %s", out)
	}
}

func TestCmdFmt(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.vlg", "r:ins[X].m->a<-X.t->1.")
	out, err := capture(t, func() error { return cmdFmt([]string{"-prog", prog}) })
	if err != nil {
		t.Fatalf("cmdFmt: %v", err)
	}
	if strings.TrimSpace(out) != "r: ins[X].m -> a <- X.t -> 1." {
		t.Errorf("fmt output: %q", out)
	}
	if err := cmdFmt([]string{}); err == nil {
		t.Errorf("fmt without flags accepted")
	}
}

func TestCmdRepoLifecycle(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", `henry.isa -> empl / sal -> 1000.`)
	prog := writeFile(t, dir, "raise.vlg", `r: mod[E].sal -> (S, S') <- E.isa -> empl, E.sal -> S, S' = S * 2.`)
	repo := filepath.Join(dir, "repo")

	if _, err := capture(t, func() error {
		return cmdRepo([]string{"init", "-dir", repo, "-ob", ob})
	}); err != nil {
		t.Fatalf("repo init: %v", err)
	}
	if _, err := capture(t, func() error {
		return cmdRepo([]string{"apply", "-dir", repo, "-prog", prog})
	}); err != nil {
		t.Fatalf("repo apply: %v", err)
	}
	logOut, err := capture(t, func() error { return cmdRepo([]string{"log", "-dir", repo}) })
	if err != nil {
		t.Fatalf("repo log: %v", err)
	}
	if !strings.Contains(logOut, "state 1:") {
		t.Errorf("repo log: %s", logOut)
	}
	atOut, err := capture(t, func() error { return cmdRepo([]string{"at", "-dir", repo, "-state", "1"}) })
	if err != nil {
		t.Fatalf("repo at: %v", err)
	}
	if !strings.Contains(atOut, "henry.sal -> 2000.") {
		t.Errorf("repo at: %s", atOut)
	}
	if err := cmdRepo([]string{"at", "-dir", repo, "-state", "9"}); err == nil {
		t.Errorf("nonexistent state accepted")
	}
}

func TestCmdRepoConstrain(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", `henry.isa -> empl / sal -> 100.`)
	cons := writeFile(t, dir, "cons.vlg", `nonneg: E.isa -> empl, E.sal -> S, S < 0.`)
	cut := writeFile(t, dir, "cut.vlg", `r: mod[E].sal -> (S, S') <- E.isa -> empl, E.sal -> S, S' = S - 500.`)
	repo := filepath.Join(dir, "repo")

	if _, err := capture(t, func() error { return cmdRepo([]string{"init", "-dir", repo, "-ob", ob}) }); err != nil {
		t.Fatalf("init: %v", err)
	}
	out, err := capture(t, func() error { return cmdRepo([]string{"constrain", "-dir", repo, "-file", cons}) })
	if err != nil {
		t.Fatalf("constrain: %v", err)
	}
	if !strings.Contains(out, "installed 1 constraint") {
		t.Errorf("constrain output: %s", out)
	}
	if _, err := capture(t, func() error { return cmdRepo([]string{"apply", "-dir", repo, "-prog", cut}) }); err == nil {
		t.Errorf("violating apply accepted")
	}
}

func TestCmdConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", testBase)
	bin := filepath.Join(dir, "ob.bin")
	back := filepath.Join(dir, "back.vlg")
	if err := cmdConvert([]string{"-in", ob, "-o", bin, "-to", "bin"}); err != nil {
		t.Fatalf("to bin: %v", err)
	}
	if err := cmdConvert([]string{"-in", bin, "-o", back, "-to", "text"}); err != nil {
		t.Fatalf("to text: %v", err)
	}
	data, err := os.ReadFile(back)
	if err != nil || !strings.Contains(string(data), "phil.sal -> 4000.") {
		t.Errorf("round trip: %s (%v)", data, err)
	}
	if err := cmdConvert([]string{"-in", ob, "-o", bin, "-to", "bogus"}); err == nil {
		t.Errorf("bad format accepted")
	}
}

func TestCmdStats(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", testBase)
	out, err := capture(t, func() error { return cmdStats([]string{"-ob", ob}) })
	if err != nil {
		t.Fatalf("cmdStats: %v", err)
	}
	if !strings.Contains(out, "2 objects") || !strings.Contains(out, "sal") {
		t.Errorf("stats output: %s", out)
	}
}

func TestCmdPlan(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", testBase)
	prog := writeFile(t, dir, "prog.vlg", testProg)
	out, err := capture(t, func() error { return cmdPlan([]string{"-ob", ob, "-prog", prog}) })
	if err != nil {
		t.Fatalf("cmdPlan: %v", err)
	}
	for _, want := range []string{"rule1:", "rule4:", "(est", "Δ"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdVetDeep(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", testBase)
	prog := writeFile(t, dir, "prog.vlg", testProg)

	// A clean program stays clean under -deep.
	out, err := capture(t, func() error {
		return cmdVet([]string{"-deep", "-ob", ob, prog})
	})
	if err != nil {
		t.Fatalf("vet -deep: %v\n%s", err, out)
	}

	// -deep -json emits per-file reports with the facts attached.
	out, err = capture(t, func() error {
		return cmdVet([]string{"-deep", "-json", "-ob", ob, prog})
	})
	if err != nil {
		t.Fatalf("vet -deep -json: %v", err)
	}
	for _, want := range []string{`"file"`, `"diagnostics"`, `"facts"`, `"est_rows"`, `"rule1"`} {
		if !strings.Contains(out, want) {
			t.Errorf("vet -deep -json misses %s:\n%s", want, out)
		}
	}

	// Plain -json keeps the flat diagnostics-array shape.
	out, err = capture(t, func() error {
		return cmdVet([]string{"-json", prog})
	})
	if err != nil {
		t.Fatalf("vet -json: %v", err)
	}
	if strings.Contains(out, `"facts"`) || !strings.HasPrefix(strings.TrimSpace(out), "[") {
		t.Errorf("vet -json shape changed:\n%s", out)
	}

	// A deep finding: sort clash between a string fact and an ordering.
	clash := writeFile(t, dir, "clash.vlg",
		"r: ins[E].flag -> yes <- E.name -> N, N > 10.\n")
	clashOb := writeFile(t, dir, "clash-ob.vlg", "e1.name -> \"ann\".\n")
	out, err = capture(t, func() error {
		return cmdVet([]string{"-deep", "-ob", clashOb, clash})
	})
	if err != nil {
		t.Fatalf("vet -deep on warning-only program must not fail: %v", err)
	}
	if !strings.Contains(out, "V0302") {
		t.Errorf("vet -deep misses the sort clash:\n%s", out)
	}
	// ... but -strict turns the warning into a failure.
	if _, err = capture(t, func() error {
		return cmdVet([]string{"-deep", "-strict", "-ob", clashOb, clash})
	}); err == nil {
		t.Errorf("vet -deep -strict accepted a warning")
	}
}

func TestCmdExplainPlan(t *testing.T) {
	dir := t.TempDir()
	ob := writeFile(t, dir, "ob.vlg", testBase)
	prog := writeFile(t, dir, "prog.vlg", testProg)

	out, err := capture(t, func() error {
		return cmdExplainPlan([]string{"-ob", ob, prog})
	})
	if err != nil {
		t.Fatalf("explain-plan: %v\n%s", err, out)
	}
	for _, want := range []string{"rule1", "[stratum 1]", "cost ", "fanout ", "generator", "filter", "strata:"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain-plan misses %q:\n%s", want, out)
		}
	}

	// Without -ob the static planner is used and announced.
	out, err = capture(t, func() error {
		return cmdExplainPlan([]string{prog})
	})
	if err != nil {
		t.Fatalf("explain-plan static: %v", err)
	}
	if !strings.Contains(out, "static estimates") {
		t.Errorf("explain-plan static header missing:\n%s", out)
	}

	// -json emits the Facts structure.
	out, err = capture(t, func() error {
		return cmdExplainPlan([]string{"-json", "-ob", ob, prog})
	})
	if err != nil {
		t.Fatalf("explain-plan -json: %v", err)
	}
	for _, want := range []string{`"rules"`, `"literals"`, `"est_rows"`, `"base"`} {
		if !strings.Contains(out, want) {
			t.Errorf("explain-plan -json misses %s:\n%s", want, out)
		}
	}

	// A program with errors is refused.
	bad := writeFile(t, dir, "bad.vlg", "r: ins[X].t -> Y <- X.t -> w.\n")
	if _, err = capture(t, func() error {
		return cmdExplainPlan([]string{bad})
	}); err == nil {
		t.Errorf("explain-plan accepted an unsafe program")
	}
}
