// Command verlog-bench runs the experiment suite of EXPERIMENTS.md and
// prints one table per experiment. Every figure and worked example of the
// paper has an experiment (E1-E5), plus the characterization and ablation
// studies (E6-E13).
//
// Usage:
//
//	verlog-bench                      # run everything
//	verlog-bench -run E2,E9           # run selected experiments
//	verlog-bench -list                # list experiments
//	verlog-bench -gobench-json FILE   # convert `go test -bench` output to JSON
//	verlog-bench -table-json FILE     # also write the result tables as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"verlog/internal/bench"
)

func main() {
	code := run(os.Args[1:], os.Stdout, os.Stderr)
	os.Exit(code)
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("verlog-bench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	runList := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	list := fs.Bool("list", false, "list experiments and exit")
	gobenchJSON := fs.String("gobench-json", "", "parse `go test -bench` output from FILE (- for stdin) and print JSON")
	tableJSON := fs.String("table-json", "", "write the result tables of the selected experiments as JSON to FILE")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *gobenchJSON != "" {
		in := io.Reader(os.Stdin)
		if *gobenchJSON != "-" {
			f, err := os.Open(*gobenchJSON)
			if err != nil {
				fmt.Fprintf(errOut, "verlog-bench: %v\n", err)
				return 2
			}
			defer f.Close()
			in = f
		}
		rep, err := bench.ParseGoBench(in)
		if err != nil {
			fmt.Fprintf(errOut, "verlog-bench: %v\n", err)
			return 1
		}
		rep.DeriveOverhead()
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(errOut, "verlog-bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var selected []bench.Experiment
	if *runList == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Get(id)
			if !ok {
				fmt.Fprintf(errOut, "verlog-bench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	failed := false
	var tables []*bench.Table
	for i, e := range selected {
		if i > 0 {
			fmt.Fprintln(out)
		}
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(errOut, "verlog-bench: %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		tables = append(tables, tbl)
		tbl.Fprint(out)
		if strings.Contains(tbl.String(), "FAIL") {
			failed = true
		}
	}
	if *tableJSON != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(errOut, "verlog-bench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*tableJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(errOut, "verlog-bench: %v\n", err)
			return 1
		}
	}
	if failed {
		return 1
	}
	return 0
}
