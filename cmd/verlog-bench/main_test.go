package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("code = %d, stderr = %s", code, errOut.String())
	}
	for _, want := range []string{"E1", "E2", "E13", "Figure 2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "E99"}, &out, &errOut); code != 2 {
		t.Errorf("code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	var out, errOut strings.Builder
	if code := run([]string{"-run", "E7"}, &out, &errOut); code != 0 {
		t.Fatalf("code = %d, stderr = %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "version-linearity") || !strings.Contains(out.String(), "PASS") {
		t.Errorf("E7 output:\n%s", out.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("code = %d, want 2", code)
	}
}
