// verlog-lint is the codebase's own invariant checker: a multichecker in
// the style of golang.org/x/tools/go/analysis, built on the stdlib-only
// framework in internal/lint so it runs with an empty module cache.
//
// Usage:
//
//	verlog-lint [-run names] [-list] [module-root]
//
// It walks the module (default: the current directory), parses every
// package including tests, runs all analyzers and prints findings as
// file:line:col: analyzer: message. The exit status is 1 when anything
// was found, so `make lint` and CI fail on a violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"verlog/internal/lint"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All
	if *run != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range lint.All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "verlog-lint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verlog-lint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "verlog-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
