// Command verlog-server serves a journaled verlog repository over HTTP
// (see package internal/server for the endpoints).
//
// Usage:
//
//	verlog-server -dir DIR [-addr :8487] [-init BASE.vlg]
//	              [-log text|json] [-slow-threshold 250ms]
//
// With -init the repository is created from the given object base first.
// Request logs are structured (log/slog); -log json emits one JSON object
// per request for log shippers. Requests slower than -slow-threshold land
// in the bounded in-memory slow log at GET /v1/debug/slow (0 records
// everything, a negative duration disables it). Prometheus metrics are at
// GET /metrics, an expvar mirror at GET /debug/vars.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"verlog/internal/obs"
	"verlog/internal/parser"
	"verlog/internal/repository"
	"verlog/internal/server"
)

func main() {
	dir := flag.String("dir", "", "repository directory (required)")
	addr := flag.String("addr", ":8487", "listen address")
	initBase := flag.String("init", "", "initialize the repository from this object base first")
	logFormat := flag.String("log", "text", "request log format: text or json")
	slowThreshold := flag.Duration("slow-threshold", server.DefaultSlowThreshold,
		"record requests at least this slow in /v1/debug/slow (0 = all, negative = off)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "verlog-server: -dir is required")
		os.Exit(2)
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "verlog-server: -log must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	if *initBase != "" {
		src, err := os.ReadFile(*initBase)
		if err != nil {
			fatal(logger, err)
		}
		ob, err := parser.ObjectBase(string(src), *initBase)
		if err != nil {
			fatal(logger, err)
		}
		if _, err := repository.Init(*dir, ob); err != nil {
			fatal(logger, err)
		}
		logger.Info("initialized repository", "dir", *dir, "facts", ob.Size())
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		fatal(logger, err)
	}
	if rec := repo.Recovery(); rec.Clean() {
		logger.Info("opened repository", "dir", *dir, "entries", rec.Entries,
			"recovery_ms", rec.Duration.Milliseconds())
	} else {
		logger.Warn("opened repository after recovery", "dir", *dir, "detail", rec.String(),
			"recovery_ms", rec.Duration.Milliseconds())
	}

	api := server.New(repo,
		server.WithLogger(logger),
		server.WithSlowThreshold(*slowThreshold),
	)
	// Mirror the metric registry into the process-global expvar namespace so
	// /debug/vars carries the counters alongside the runtime's memstats.
	server.PublishExpvar(api)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute, // applies may evaluate for a while
		IdleTimeout:       2 * time.Minute,
	}
	// Graceful shutdown on SIGINT/SIGTERM: in-flight applies finish, the
	// journal stays consistent.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		close(idle)
	}()
	version, commit := obs.BuildInfo()
	logger.Info("serving", "dir", *dir, "addr", *addr, "slow_threshold", slowThreshold.String(),
		"version", version, "commit", commit, "go", runtime.Version())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(logger, err)
	}
	<-idle
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
