// Command verlog-server serves a journaled verlog repository over HTTP
// (see package internal/server for the endpoints).
//
// Usage:
//
//	verlog-server -dir DIR [-addr :8487] [-init BASE.vlg]
//
// With -init the repository is created from the given object base first.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"verlog/internal/parser"
	"verlog/internal/repository"
	"verlog/internal/server"
)

func main() {
	dir := flag.String("dir", "", "repository directory (required)")
	addr := flag.String("addr", ":8487", "listen address")
	initBase := flag.String("init", "", "initialize the repository from this object base first")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "verlog-server: -dir is required")
		os.Exit(2)
	}
	if *initBase != "" {
		src, err := os.ReadFile(*initBase)
		if err != nil {
			log.Fatalf("verlog-server: %v", err)
		}
		ob, err := parser.ObjectBase(string(src), *initBase)
		if err != nil {
			log.Fatalf("verlog-server: %v", err)
		}
		if _, err := repository.Init(*dir, ob); err != nil {
			log.Fatalf("verlog-server: %v", err)
		}
		log.Printf("initialized repository in %s (%d facts)", *dir, ob.Size())
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		log.Fatalf("verlog-server: %v", err)
	}
	if rec := repo.Recovery(); rec.Clean() {
		log.Printf("opened repository %s: clean, %d journal entries", *dir, rec.Entries)
	} else {
		log.Printf("opened repository %s: RECOVERED — %s", *dir, rec)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(repo),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute, // applies may evaluate for a while
		IdleTimeout:       2 * time.Minute,
	}
	// Graceful shutdown on SIGINT/SIGTERM: in-flight applies finish, the
	// journal stays consistent.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("verlog-server: shutdown: %v", err)
		}
		close(idle)
	}()
	log.Printf("serving repository %s on %s", *dir, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("verlog-server: %v", err)
	}
	<-idle
}
