// Command verlog-server serves a journaled verlog repository over HTTP
// (see package internal/server for the endpoints).
//
// Usage:
//
//	verlog-server -dir DIR [-addr :8487] [-init BASE.vlg]
//	              [-log text|json] [-slow-threshold 250ms]
//	              [-follow http://primary:8487] [-follower-id NAME]
//	              [-max-retention 65536]
//	              [-tenants-root DIR/tenants] [-max-open-tenants 64]
//	              [-allow-tenant-delete]
//	              [-ready-max-lag 1024] [-ready-max-lag-seconds 1m]
//	              [-debug-addr 127.0.0.1:8488]
//
// With -init the repository is created from the given object base first.
//
// The server is multi-tenant: -dir holds the "default" tenant, and every
// other tenant lives in its own directory under -tenants-root (default
// <dir>/tenants), created lazily on its first POST /v1/t/{name}/apply or
// /constraints. At most -max-open-tenants repositories are resident at a
// time; idle ones past the cap are cleanly closed (their directories
// kept) and reopened on demand. DELETE /v1/t/{name} is refused unless
// -allow-tenant-delete is given. Replication covers the default tenant
// only.
// With -follow the server runs as a replication follower of the primary
// at the given base URL: it pulls the primary's journal over
// /v1/repl/stream (bootstrapping from /v1/repl/snapshot when the
// directory is empty or too far behind), serves all read endpoints from
// its replicated head, and rejects writes with 403 read_only pointing at
// the primary. POST /v1/repl/promote turns it into the primary.
// Without -follow the server is a primary: it serves the replication
// stream and retains up to -max-retention journal records past the acks
// of its connected followers so they can resume without a snapshot
// transfer.
//
// Request logs are structured (log/slog); -log json emits one JSON object
// per request for log shippers. Requests slower than -slow-threshold land
// in the bounded in-memory slow log at GET /v1/debug/slow (0 records
// everything, a negative duration disables it). Prometheus metrics are at
// GET /metrics, an expvar mirror at GET /debug/vars.
//
// Health endpoints: GET /v1/healthz is liveness; GET /v1/readyz runs the
// named readiness checks (recovery, fencing, follower lag against
// -ready-max-lag / -ready-max-lag-seconds, tenant residency pressure)
// and answers 503 with the failing checks; GET /v1/status is the full
// node snapshot `verlog status` and `verlog top` render. With
// -debug-addr a side listener serves net/http/pprof, /metrics and
// /debug/vars — bind it to localhost or a management network.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"verlog/internal/obs"
	"verlog/internal/parser"
	"verlog/internal/replication"
	"verlog/internal/repository"
	"verlog/internal/server"
	"verlog/internal/storage"
	"verlog/internal/tenant"
)

func main() {
	dir := flag.String("dir", "", "repository directory (required)")
	addr := flag.String("addr", ":8487", "listen address")
	initBase := flag.String("init", "", "initialize the repository from this object base first")
	logFormat := flag.String("log", "text", "request log format: text or json")
	slowThreshold := flag.Duration("slow-threshold", server.DefaultSlowThreshold,
		"record requests at least this slow in /v1/debug/slow (0 = all, negative = off)")
	follow := flag.String("follow", "", "run as a replication follower of the primary at this base URL")
	followerID := flag.String("follower-id", "", "stable follower identity in the primary's ack table (default: random)")
	maxRetention := flag.Int("max-retention", replication.DefaultMaxRetention,
		"journal records retained past follower acks before they must re-bootstrap (negative = unbounded)")
	tenantsRoot := flag.String("tenants-root", "", "directory holding tenant repositories (default <dir>/tenants)")
	maxOpenTenants := flag.Int("max-open-tenants", 64, "resident tenant repositories before idle ones are evicted (0 = unbounded)")
	allowTenantDelete := flag.Bool("allow-tenant-delete", false, "enable DELETE /v1/t/{tenant}")
	readyMaxLag := flag.Int("ready-max-lag", server.DefaultReadyMaxLag,
		"journal seqs a follower may trail its primary before /v1/readyz reports 503 (0 = unbounded)")
	readyMaxLagAge := flag.Duration("ready-max-lag-seconds", server.DefaultReadyMaxAge,
		"age of a follower's last successful sync, while the stream is down, before /v1/readyz reports 503 (0 = unbounded)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof, /metrics and /debug/vars on this side address (e.g. 127.0.0.1:8488); off when empty")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "verlog-server: -dir is required")
		os.Exit(2)
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "verlog-server: -log must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	if *initBase != "" {
		src, err := os.ReadFile(*initBase)
		if err != nil {
			fatal(logger, err)
		}
		ob, err := parser.ObjectBase(string(src), *initBase)
		if err != nil {
			fatal(logger, err)
		}
		if _, err := repository.Init(*dir, ob); err != nil {
			fatal(logger, err)
		}
		logger.Info("initialized repository", "dir", *dir, "facts", ob.Size())
	}
	// An empty directory under -follow bootstraps from the primary's
	// snapshot, so a fresh follower needs no -init and no shared disk.
	if *follow != "" {
		if _, err := os.Stat(filepath.Join(*dir, "snapshot.bin")); errors.Is(err, os.ErrNotExist) {
			if err := bootstrapFollower(logger, *dir, *follow); err != nil {
				fatal(logger, err)
			}
		}
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		fatal(logger, err)
	}
	if rec := repo.Recovery(); rec.Clean() {
		logger.Info("opened repository", "dir", *dir, "entries", rec.Entries,
			"recovery_ms", rec.Duration.Milliseconds())
	} else {
		logger.Warn("opened repository after recovery", "dir", *dir, "detail", rec.String(),
			"recovery_ms", rec.Duration.Milliseconds())
	}

	node := replication.NewNode(repo, replication.Config{
		PrimaryURL:   *follow,
		FollowerID:   *followerID,
		MaxRetention: *maxRetention,
		Logger:       logger,
	})
	node.Start()
	if *follow != "" {
		logger.Info("following primary", "primary", *follow, "epoch", repo.Epoch())
	}

	root := *tenantsRoot
	if root == "" {
		root = filepath.Join(*dir, "tenants")
	}
	tenants := tenant.NewManager(root, tenant.WithMaxOpen(*maxOpenTenants))

	api := server.New(repo,
		server.WithLogger(logger),
		server.WithSlowThreshold(*slowThreshold),
		server.WithReplication(node),
		server.WithTenantManager(tenants),
		server.WithTenantDelete(*allowTenantDelete),
		server.WithReadyMaxLag(*readyMaxLag, *readyMaxLagAge),
	)
	// Mirror the metric registry into the process-global expvar namespace so
	// /debug/vars carries the counters alongside the runtime's memstats.
	server.PublishExpvar(api)

	// The debug side listener keeps profiling endpoints off the public
	// address: bind it to localhost (or a management network) and the
	// public -addr never exposes pprof.
	if *debugAddr != "" {
		go func() {
			logger.Info("debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux(api)); err != nil {
				logger.Error("debug listener", "err", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute, // applies may evaluate for a while
		IdleTimeout:       2 * time.Minute,
	}
	// Graceful shutdown on SIGINT/SIGTERM: in-flight applies finish, the
	// journal stays consistent.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		close(idle)
	}()
	version, commit := obs.BuildInfo()
	logger.Info("serving", "dir", *dir, "addr", *addr, "slow_threshold", slowThreshold.String(),
		"version", version, "commit", commit, "go", runtime.Version())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(logger, err)
	}
	<-idle
	node.Stop()
	// Quiesce every resident tenant repository; the default tenant's
	// journal needs no action (applies finished during Shutdown).
	tenants.Close()
}

// debugMux serves the profiling surface on the opt-in -debug-addr side
// listener: net/http/pprof plus the same /metrics and /debug/vars the
// main address serves, so a scraper confined to the management network
// needs only this port.
func debugMux(api *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", api.Registry().Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// bootstrapFollower initializes an empty follower directory from the
// primary's snapshot transfer, so the first stream request resumes from
// the transferred seq instead of replaying history from zero.
func bootstrapFollower(logger *slog.Logger, dir, primary string) error {
	logger.Info("bootstrapping follower from primary snapshot", "primary", primary)
	resp, err := http.Get(strings.TrimRight(primary, "/") + "/v1/repl/snapshot")
	if err != nil {
		return fmt.Errorf("fetching primary snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("primary snapshot returned %d", resp.StatusCode)
	}
	base, seq, err := storage.LoadBinaryAt(resp.Body)
	if err != nil {
		return fmt.Errorf("decoding primary snapshot: %w", err)
	}
	if _, err := repository.InitAt(dir, base, seq); err != nil {
		return err
	}
	logger.Info("follower bootstrapped", "seq", seq, "facts", base.Size())
	return nil
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
