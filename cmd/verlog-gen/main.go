// Command verlog-gen generates the synthetic workloads of the experiment
// suite: object bases (enterprise org charts, genealogies, item/payload
// bases) and parameterized programs (version chains, touch programs,
// layered programs), in the concrete syntax.
//
// Usage:
//
//	verlog-gen enterprise -n 1000 [-managers 0.1] [-seed 42]
//	verlog-gen genealogy  -generations 6 [-branching 2] [-roots 1]
//	verlog-gen items      -n 500
//	verlog-gen touched    -n 2000 [-methods 8]
//	verlog-gen chain      -k 8          # program
//	verlog-gen touch      -percent 10   # program
//	verlog-gen layered    -n 256 [-depth 4]  # program
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"verlog/internal/objectbase"
	"verlog/internal/parser"
	"verlog/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "verlog-gen:", err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("need a workload kind (enterprise, genealogy, items, touched, chain, touch, layered)")
	}
	kind, rest := args[0], args[1:]
	fs := flag.NewFlagSet(kind, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 1000, "size (objects / rules)")
	managers := fs.Float64("managers", 0.1, "manager fraction (enterprise)")
	seed := fs.Int64("seed", 42, "random seed (enterprise)")
	generations := fs.Int("generations", 6, "generations (genealogy)")
	branching := fs.Int("branching", 2, "children per person (genealogy)")
	roots := fs.Int("roots", 1, "family trees (genealogy)")
	methods := fs.Int("methods", 8, "payload facts per object (touched)")
	k := fs.Int("k", 8, "update groups (chain)")
	percent := fs.Int("percent", 10, "touched percentage (touch)")
	depth := fs.Int("depth", 4, "max VID depth (layered)")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	var base *objectbase.Base
	switch kind {
	case "enterprise":
		base = workload.EnterpriseSpec{Employees: *n, ManagerFraction: *managers, Seed: *seed}.ObjectBase()
	case "genealogy":
		base = workload.GenealogySpec{Generations: *generations, Branching: *branching, Roots: *roots}.ObjectBase()
	case "items":
		base = workload.Items(*n)
	case "touched":
		base = workload.TouchedSpec{Objects: *n, Methods: *methods}.ObjectBase()
	case "chain":
		_, err := io.WriteString(out, workload.ChainProgram(*k))
		return err
	case "touch":
		_, err := io.WriteString(out, workload.TouchProgram(*percent))
		return err
	case "layered":
		_, err := io.WriteString(out, workload.LayeredProgram(*n, *depth))
		return err
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	_, err := io.WriteString(out, parser.FormatFacts(base, false))
	return err
}
