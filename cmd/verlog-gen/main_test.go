package main

import (
	"strings"
	"testing"

	"verlog/internal/parser"
)

func gen(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestGenBasesParse(t *testing.T) {
	for _, args := range [][]string{
		{"enterprise", "-n", "20"},
		{"genealogy", "-generations", "3"},
		{"items", "-n", "10"},
		{"touched", "-n", "15", "-methods", "2"},
	} {
		out := gen(t, args...)
		if _, err := parser.ObjectBase(out, "gen"); err != nil {
			t.Errorf("%v output does not parse: %v", args, err)
		}
	}
}

func TestGenProgramsParseAndCheck(t *testing.T) {
	for _, args := range [][]string{
		{"chain", "-k", "3"},
		{"touch", "-percent", "25"},
		{"layered", "-n", "16", "-depth", "3"},
	} {
		out := gen(t, args...)
		if _, err := parser.Program(out, "gen"); err != nil {
			t.Errorf("%v output does not parse: %v", args, err)
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	a := gen(t, "enterprise", "-n", "30", "-seed", "5")
	b := gen(t, "enterprise", "-n", "30", "-seed", "5")
	if a != b {
		t.Errorf("same seed, different output")
	}
	c := gen(t, "enterprise", "-n", "30", "-seed", "6")
	if a == c {
		t.Errorf("different seed, same output")
	}
}

func TestGenErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Errorf("no kind accepted")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Errorf("unknown kind accepted")
	}
	if err := run([]string{"items", "-bogusflag"}, &out); err == nil {
		t.Errorf("unknown flag accepted")
	}
}
