package verlog_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"verlog"
	"verlog/internal/analysis"
	"verlog/internal/term"
)

var updateAnalysis = flag.Bool("update-analysis", false,
	"rewrite the -- diagnostics -- sections of testdata/analysis cases")

// TestAnalysisGolden runs every case under testdata/analysis. A case file
// has the sections
//
//	-- base --         optional: an object base for the vocabulary passes
//	-- program --      the program text handed to the analyzer
//	-- diagnostics --  expected output, one "file:line:col: severity CODE:
//	                   message" line per diagnostic (empty for a clean
//	                   program); must be the last section
//
// Line numbers count from the first line after the -- program -- header.
// Cases run under the deep analyzer (AnalyzeDeepSource), so the expected
// sections cover the semantic V03xx tier as well as the structural codes.
// Run `go test -run TestAnalysisGolden -update-analysis` to regenerate the
// expected output after changing the analyzer; review the diff — the
// regeneration is deterministic (diagnostics sort by position, then code,
// then message).
//
// Together with the programmatic structural cases below, the corpus covers
// every diagnostic code — the completeness check at the end fails when a
// new code is added without a test here.
func TestAnalysisGolden(t *testing.T) {
	files, err := filepath.Glob("testdata/analysis/*.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no analysis cases found")
	}
	covered := map[string]bool{}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			sections := splitSections(string(raw))
			progSrc, ok := sections["program"]
			if !ok {
				t.Fatal("case has no -- program -- section")
			}
			var opts verlog.AnalysisOptions
			if baseSrc, ok := sections["base"]; ok {
				ob, err := verlog.ParseObjectBaseFile(baseSrc, file+":base")
				if err != nil {
					t.Fatalf("base: %v", err)
				}
				opts.Base = ob
			}
			ds, _, _ := verlog.AnalyzeDeepSource(progSrc, filepath.Base(file), opts)
			var got []string
			for _, d := range ds {
				got = append(got, d.String())
				covered[d.Code] = true
			}
			if *updateAnalysis {
				if err := rewriteDiagnostics(file, string(raw), got); err != nil {
					t.Fatal(err)
				}
				return
			}
			want := splitLines(sections["diagnostics"])
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("diagnostics mismatch\n got:\n%s\nwant:\n%s",
					strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
		})
	}

	// V0003-V0006 guard against malformed term.Rule values the parser can
	// never produce, so they are exercised on programmatically built rules.
	t.Run("structural", func(t *testing.T) {
		x := term.Var("X")
		app := func(m string) term.MethodApp { return term.MethodApp{Method: m, Result: term.Sym("v")} }
		body := []term.Literal{{Atom: term.VersionAtom{V: term.VersionID{Base: x}, App: app("t")}}}
		cases := []struct {
			name string
			rule term.Rule
			code string
		}{
			{"exists-head", term.Rule{
				Head: term.UpdateAtom{Kind: term.Ins, V: term.VersionID{Base: x}, App: app(term.ExistsMethod)},
				Body: body,
			}, analysis.CodeExistsHead},
			{"wildcard-head", term.Rule{
				Head: term.UpdateAtom{Kind: term.Ins, V: term.VersionID{Base: x, Any: true}, App: app("m")},
				Body: body,
			}, analysis.CodeWildcard},
			{"delete-all-in-body", term.Rule{
				Head: term.UpdateAtom{Kind: term.Ins, V: term.VersionID{Base: x}, App: app("t")},
				Body: append([]term.Literal{{Atom: term.UpdateAtom{Kind: term.Del, V: term.VersionID{Base: x}, All: true}}}, body...),
			}, analysis.CodeDeleteAll},
			{"mod-without-pair", term.Rule{
				Head: term.UpdateAtom{Kind: term.Mod, V: term.VersionID{Base: x}, App: app("t")},
				Body: body,
			}, analysis.CodeModPair},
		}
		for _, c := range cases {
			ds := verlog.Analyze(&verlog.Program{Rules: []verlog.Rule{c.rule}}, verlog.AnalysisOptions{})
			found := false
			for _, d := range ds {
				covered[d.Code] = true
				if d.Code == c.code && d.Severity == verlog.SeverityError {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: no %s diagnostic in %v", c.name, c.code, ds)
			}
		}
	})

	if *updateAnalysis {
		return
	}
	all := []string{
		analysis.CodeUnboundVar, analysis.CodeNotStratifiable,
		analysis.CodeExistsHead, analysis.CodeWildcard,
		analysis.CodeDeleteAll, analysis.CodeModPair, analysis.CodeParse,
		analysis.CodeNeverFires, analysis.CodeDuplicateRule,
		analysis.CodeSingleVar, analysis.CodeEmptiedVersion,
		analysis.CodeLinearityClash, analysis.CodeDeepVID,
		analysis.CodeUnreadMethod, analysis.CodeUnknownMethod,
		analysis.CodeNoClass, analysis.CodeSortClash,
		analysis.CodeModRetype, analysis.CodeNonlinearRecursion,
		analysis.CodeCrossProduct,
	}
	for _, code := range all {
		if !covered[code] {
			t.Errorf("diagnostic code %s has no covering case in testdata/analysis", code)
		}
	}
}

// rewriteDiagnostics replaces everything after the -- diagnostics -- header
// (the last section by convention) with the given lines.
func rewriteDiagnostics(file, raw string, lines []string) error {
	marker := "-- diagnostics --\n"
	i := strings.Index(raw, marker)
	if i < 0 {
		return os.ErrInvalid
	}
	out := raw[:i+len(marker)]
	if len(lines) > 0 {
		out += strings.Join(lines, "\n") + "\n"
	}
	return os.WriteFile(file, []byte(out), 0o644)
}
